// Package sanchis implements the guided multi-way iterative-improvement
// engine at the heart of FPART (Krupnova & Saucier, DATE 1999, §3.3–§3.7).
//
// It is the Sanchis (1989) multi-way extension of Fiduccia–Mattheyses with
// the paper's FPGA-specific guidance:
//
//   - one gain bucket per move direction — k·(k−1) buckets for a k-block
//     pass — with LIFO lists and 2-level (Krishnamurthy) gains for
//     tie-breaking, further ties broken toward size-equilibrating moves
//     max(S_FROM − S_TO) (§3.7);
//   - feasible move regions gating cell moves by block size windows, with
//     separate windows for 2-block and multi-block passes, no upper bound
//     for the remainder, and no I/O-violation gating (§3.5);
//   - solution selection by the lexicographic key (f, d_k, T_SUM, d_k^E)
//     (§3.4) rather than raw cut size;
//   - dual solution stacks — semi-feasible and infeasible — collected during
//     the first pass and used to restart pass series (§3.6).
//
// A 2-block Improve call is exactly the guided FM bipartitioning pass; the
// multi-block call is the Sanchis generalization.
package sanchis

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fpart/internal/gain"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// Windows defines the feasible move regions of §3.5. The published
// constants are direct multipliers of S_MAX (see DESIGN.md for the
// interpretation note): a non-remainder block must stay within
// [lower·S_MAX, Upper·S_MAX], where lower is Lower2 for 2-block passes and
// LowerMulti for multi-block passes. The remainder has no upper bound, and
// moves out of the remainder are never size-gated.
type Windows struct {
	Upper      float64 // ε_max = 1.05
	Lower2     float64 // ε_min for 2-block passes = 0.95
	LowerMulti float64 // ε_min for multi-block passes = 0.3
}

// DefaultWindows returns the published §4 values.
func DefaultWindows() Windows {
	return Windows{Upper: 1.05, Lower2: 0.95, LowerMulti: 0.3}
}

// Config tunes the engine. Zero values select reasonable defaults via
// normalize.
type Config struct {
	Windows Windows
	Cost    partition.CostParams
	// StackDepth is D_stack, the depth of each of the two solution stacks
	// (§3.6; published value 4). Zero disables solution stacks. Set to -1
	// to explicitly disable while keeping other defaults.
	StackDepth int
	// MaxPasses bounds each pass series. Zero selects 10.
	MaxPasses int
	// UseLevel2 enables 2-level Krishnamurthy gains for tie-breaking.
	UseLevel2 bool
	// GainLevels selects deeper Krishnamurthy look-ahead for tie-breaking
	// (3 or more levels, compared lexicographically). Zero or below 3
	// defers to UseLevel2. Krishnamurthy [8] and the study [7] cited in
	// §3.7 found diminishing returns past level 2 — the ablation bench
	// confirms it here.
	GainLevels int
	// TieWidth is how many cells per direction's top gain list are examined
	// when breaking ties. Zero selects 8.
	TieWidth int
	// DisableWindows turns off all size gating (ablation switch).
	DisableWindows bool
	// CutObjective replaces the infeasibility-distance solution key with
	// the classical (feasible blocks, cut size) key — the cost function of
	// Kuznar et al. [9] that §3.3 contrasts against. Used by the k-way.x
	// baseline and the cost-function ablation.
	CutObjective bool
	// PinGain implements the paper's first future-work suggestion (§5):
	// bucket cells by the real change in block I/O pin counts (−ΔT over
	// the touched blocks) instead of the cut-net gain. A net that stays
	// cut can still free a pin on the source block or cost one on the
	// target; pin gains see that, cut gains do not.
	PinGain bool
	// EarlyStop implements the paper's second future-work suggestion
	// (§5): abort an FM pass after this many consecutive moves without
	// improving the pass-best solution, cutting the time spent exploring
	// the infeasible region. Zero disables (the paper's baseline
	// behaviour: a full pass).
	EarlyStop int
	// DisableDeltaGain replaces the incremental delta-gain move kernel
	// with the wholesale per-neighbour gain recomputation it superseded.
	// The two paths produce bit-identical pass trajectories; the switch
	// exists for verification (differential tests) and ablation benches.
	DisableDeltaGain bool
	// Obs, when non-nil, receives stack-restart and restart-solution
	// accept/reject events (§3.6). The nil emitter is inert; see
	// internal/obs.
	Obs *obs.Emitter
}

func (c Config) normalize() Config {
	if c.Windows == (Windows{}) {
		c.Windows = DefaultWindows()
	}
	if c.Cost == (partition.CostParams{}) {
		c.Cost = partition.DefaultCost()
	}
	if c.StackDepth == 0 {
		c.StackDepth = 4
	} else if c.StackDepth < 0 {
		c.StackDepth = 0
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 10
	}
	if c.TieWidth <= 0 {
		c.TieWidth = 8
	}
	return c
}

// Default returns the paper's published engine configuration: windows
// (1.05, 0.95, 0.3), cost (0.4, 0.6, 0.1), stack depth 4, 2-level gains.
func Default() Config {
	return Config{UseLevel2: true}.normalize()
}

// Stats reports the work done by one Improve call.
type Stats struct {
	Passes         int // FM passes executed, including stack restarts
	MovesEvaluated int // candidate moves examined by best-move selection
	MovesApplied   int // cell moves applied (before rollbacks)
	MovesGated     int // candidates rejected by the §3.5 move windows
	BucketOps      int // gain-bucket mutations (inserts, removals, updates)
	Restarts       int // pass series started from stacked solutions
	Improved       bool
}

// Engine runs improvement passes over a Partition. An Engine may be reused
// across Improve calls on the same partition; it is not safe for concurrent
// use.
type Engine struct {
	p   *partition.Partition
	h   *hypergraph.Hypergraph
	cfg Config

	// per-Improve state
	blocks    []partition.BlockID
	blkIdx    []int // BlockID -> index in blocks, -1 inactive
	remainder partition.BlockID
	m         int
	allowOver bool
	// subset, when non-nil, restricts each pass's candidate cells to this
	// list (ImproveSubsetCtx) instead of scanning every node of the graph.
	// inSubset is its membership mask: the delta-update kernels must treat
	// excluded cells like locked ones, because they were never seeded into
	// the gain buckets.
	subset   []hypergraph.NodeID
	inSubset []bool

	// §3.5 window limits as integers, fixed per Improve call (prepare):
	// a destination may not grow past winUpInt, a source may not shrink
	// below winLowInt. See dirWindowFor for the exactness argument.
	winUpInt, winLowInt int

	// szOf[v] = h.Node(v).Size, packed for cache locality in the
	// admissibility test of the selection loop.
	szOf []int32

	// Resource-vector window state (nres > 0 only; all empty for scalar
	// devices, whose selection loop pays exactly one nres==0 test per
	// candidate). The §3.5 upper window generalizes componentwise: a move
	// into non-remainder block T is admissible only if T's demand total
	// stays within resUpInt[r] on every axis r. To keep the per-candidate
	// test O(1) instead of O(R), each cell carries a packed
	// dominant-resource bound resPack[v] = max_r ⌈demand_r(v)·SCALE/C_r⌉
	// and each direction a packed headroom packHead = min_r
	// ⌊headroom_r·SCALE/C_r⌋. The cache keys stay integers, and the packed
	// accept is exact-sound by the same argument as winLowInt:
	// ⌈a·SCALE/C⌉ ≤ ⌊b·SCALE/C⌋ implies a·SCALE/C ≤ b·SCALE/C implies
	// a ≤ b (SCALE/C > 0), so a packed accept never admits an overflowing
	// move. A packed reject can be spurious (demand and headroom may
	// dominate on different axes), so it falls back to the exact
	// componentwise test — outcomes are identical to the slow path.
	nres      int
	resUpInt  []int   // per-axis integer upper limit (cap, relaxed ×Upper while allowOver)
	resMinDem []int   // per-axis minimum demand over all nodes (retirement test)
	resPack   []int32 // per-node packed dominant-resource demand bound

	// buckets[d] points into slab, which backs every direction's gain
	// bucket with one shared allocation family (cache-adjacent, one Clear
	// pass per initPass instead of per-bucket rebuilds).
	buckets []*gain.Bucket
	slab    *gain.Slab
	locked  []bool
	stamp   []int32
	epoch   int32

	// netLock[net*nb + bi] counts the locked pins of net in active block
	// blocks[bi]. Maintained by applyMove (a cell locks in its destination
	// block and never moves again within the pass) and zeroed by initPass,
	// it makes the binding-number lock tests of gain2 and gainLevels O(1)
	// per net instead of a scan over the net's pins.
	netLock []int32

	// netIdx maps a net to its index in the current move's netBuf trace
	// during a sharded flush, -1 otherwise. Sized by NumNets; only the
	// entries of the moved cell's nets are ever set, and they are reset
	// before the flush returns.
	netIdx []int32

	journal []moveRec

	// delta-gain kernel scratch (sized in ImproveCtx). accum holds the
	// pending gain delta of every (cell, outgoing-direction slot) pair; it
	// is all-zero between applyMove calls. touched lists the cells with
	// pending deltas in first-touch order, netBuf receives the per-net
	// transition trace of the move being applied.
	accum   []int32
	touched []int32
	netBuf  []partition.NetDelta

	// tie-breaking scratch: Krishnamurthy level vectors for the candidate
	// and incumbent in selectBest, and the bounded top-gain-list scan
	// buffer. Reused across passes to avoid per-comparison allocation.
	lvCand, lvBest []int
	topScratch     []int32

	// dirCand caches, per direction, the local winner the direction would
	// contribute to best-move selection; applyMove dirties the directions
	// whose source or destination is a move endpoint and initPass resets
	// all. See selectBestCached.
	dirCand []dirCand

	// level-2 gain memo: one entry per (cell, outgoing-direction slot),
	// valid while g2stamp matches the cell's revision counter. cellRev is
	// bumped for every cell whose level-2 gain may have changed: the moved
	// cell's net neighbourhood after each applied move (pin counts and the
	// fresh lock both live on nets incident to the moved cell) and every
	// cell at pass start, when the locks reset.
	g2cache []int32
	g2stamp []int32
	cellRev []int32

	// parallel initPass scratch: the active cells of the pass and their
	// per-direction seed gains, plus the counting-sort grouping of active
	// cells by source block used for the direction-major bucket fill.
	activeV  []int32
	gainBuf  []int32
	blkOff   []int32
	blkCells []int32

	// bucketN/bucketMaxG are the dimensions the direction buckets were
	// built with. Buckets survive direction-count changes (their arrays are
	// per-cell, not per-direction), but a pooled engine rebound to a graph
	// with a different cell count or gain range must drop them.
	bucketN, bucketMaxG int

	// snapFree is the snapshot-buffer freelist: retired solution snapshots
	// (restart stacks, incumbent-best) are refilled via SnapshotInto instead
	// of allocating one assignment copy per snapshot.
	snapFree []partition.Snapshot

	// st accumulates effort counters for the Improve call in flight.
	st *Stats
}

type moveRec struct {
	v        hypergraph.NodeID
	from, to partition.BlockID
}

// New creates an engine over p.
func New(p *partition.Partition, cfg Config) *Engine {
	e := &Engine{}
	e.Reset(p, cfg)
	return e
}

// Reset rebinds the engine to partition p under cfg, reusing every scratch
// buffer that still fits. The per-cell revision counters, lock stamps, and
// level-2 memo stamps are rewound to their initial state, so a pooled engine
// replays exactly the trajectory a fresh New(p, cfg) engine would — the
// determinism guarantee of speculative peeling rests on this.
func (e *Engine) Reset(p *partition.Partition, cfg Config) {
	e.p = p
	e.cfg = cfg.normalize()
	h := p.Hypergraph()
	if e.h != h {
		e.h = h
		e.szOf = nil // node sizes are per-graph; prepare rebuilds
	}
	n := h.NumNodes()
	if cap(e.locked) < n {
		e.locked = make([]bool, n)
		e.stamp = make([]int32, n)
	} else {
		e.locked = e.locked[:n]
		e.stamp = e.stamp[:n]
		clearBools(e.locked[:cap(e.locked)])
		clearInt32s(e.stamp[:cap(e.stamp)])
	}
	e.epoch = 0
	clearInt32s(e.g2stamp[:cap(e.g2stamp)])
	clearInt32s(e.cellRev[:cap(e.cellRev)])
	if e.st == nil {
		e.st = new(Stats) // discarded scratch outside Improve calls
	}
}

// Unbind drops the engine's partition reference so a pooled engine does not
// pin its last run's partition (which escapes to callers via core.Result).
// Graph-shaped caches — buckets, the size table — stay resident and are
// revalidated by the next Reset.
func (e *Engine) Unbind() { e.p = nil }

// clearBools and clearInt32s zero a buffer through its full capacity, so a
// buffer sliced down and back up between Resets cannot resurface stale
// values.
func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

func clearInt32s(b []int32) {
	for i := range b {
		b[i] = 0
	}
}

// nb returns the number of active blocks.
func (e *Engine) nb() int { return len(e.blocks) }

// dirIndex maps an ordered (fromIdx, toIdx) pair to a dense direction index.
func (e *Engine) dirIndex(fi, ti int) int {
	if ti > fi {
		ti--
	}
	return fi*(e.nb()-1) + ti
}

// gain1 returns the first-level (exact Δcut) gain of moving v from F to T.
func (e *Engine) gain1(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		span := e.p.Span(net)
		if pf == 1 {
			// Net leaves F entirely; it becomes uncut only if its other
			// pins all sit in T.
			if span == 2 && e.p.PinCount(net, t) > 0 {
				g++
			}
		} else if span == 1 {
			// Net entirely inside F with other pins left behind: cut.
			g--
		}
	}
	return g
}

// gainPin returns −ΔT_SUM for moving v from F to T: the net reduction in
// terminal counts across the touched blocks (§5 future work (a)). Terminal
// deltas follow the same case analysis as the partition's incremental
// bookkeeping; pad relocation itself is T-neutral (−1 on F, +1 on T).
func (e *Engine) gainPin(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		span := e.p.Span(net)
		fromLeft := pf == 1
		toJoined := pt == 0
		spanAfter := span
		if fromLeft {
			spanAfter--
		}
		if toJoined {
			spanAfter++
		}
		wasCut, isCut := span >= 2, spanAfter >= 2
		switch {
		case wasCut && isCut:
			if fromLeft {
				g++
			}
			if toJoined {
				g--
			}
		case wasCut && !isCut:
			g += 2
		case !wasCut && isCut:
			g -= 2
		}
	}
	return g
}

// gainLevels computes Krishnamurthy gains λ_2..λ_L for moving v from F to
// T, restricted to nets with no pins outside {F, T}. λ_i counts nets whose
// F-side binding number is i minus nets whose T-side binding number is
// i−1; locked pins poison a side (binding number ∞, read from the O(1)
// netLock counters). The result is built in out (a reusable scratch
// buffer) and aliases it.
func (e *Engine) gainLevels(v hypergraph.NodeID, f, t partition.BlockID, maxLevel int, out []int) []int {
	out = out[:0]
	for lvl := 2; lvl <= maxLevel; lvl++ { // levels 2..maxLevel
		out = append(out, 0)
	}
	nb := e.nb()
	fi, ti := e.blkIdx[f], e.blkIdx[t]
	for _, net := range e.h.NodeNets(v) {
		if e.p.Span(net) > 2 {
			continue // pins in a third block, cheap O(1) pre-filter
		}
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != e.h.NetDegree(net) {
			continue
		}
		base := int(net) * nb
		freeF := e.netLock[base+fi] == 0
		freeT := e.netLock[base+ti] == 0
		for lvl := 2; lvl <= maxLevel; lvl++ {
			if freeF && pf == lvl {
				out[lvl-2]++
			}
			if freeT && pt == lvl-1 {
				out[lvl-2]--
			}
		}
	}
	return out
}

// cellGain returns the bucket (first-level) gain under the configured gain
// model.
func (e *Engine) cellGain(v hypergraph.NodeID, f, t partition.BlockID) int {
	if e.cfg.PinGain {
		return e.gainPin(v, f, t)
	}
	return e.gain1(v, f, t)
}

// gain2Of returns gain2 through the per-(cell, direction) memo. A move
// changes the level-2 gain of exactly the cells sharing a net with the
// moved cell, so deltaUpdate (and the recompute path) invalidate that
// neighbourhood and everything else stays cached across selectBest calls.
func (e *Engine) gain2Of(v hypergraph.NodeID, f, t partition.BlockID) int {
	s := e.blkIdx[t]
	if fi := e.blkIdx[f]; s > fi {
		s--
	}
	idx := int(v)*(e.nb()-1) + s
	if e.g2stamp[idx] == e.cellRev[v] {
		return int(e.g2cache[idx])
	}
	g := e.gain2(v, f, t)
	e.g2cache[idx] = int32(g)
	e.g2stamp[idx] = e.cellRev[v]
	return g
}

// gain2 returns the second-level Krishnamurthy gain of moving v from F to T,
// restricted to nets with no pins outside {F, T} (nets spanning other blocks
// cannot change cut state through F→T moves). Locked pins make a side
// unusable, following the classical binding-number definition; the lock
// tests read the per-(net, block) netLock counters, so the whole
// evaluation is O(1) per net — no pin scan.
func (e *Engine) gain2(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	nb := e.nb()
	fi, ti := e.blkIdx[f], e.blkIdx[t]
	for _, net := range e.h.NodeNets(v) {
		if e.p.Span(net) > 2 {
			continue // pins in a third block, cheap O(1) pre-filter
		}
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != e.h.NetDegree(net) {
			continue
		}
		base := int(net) * nb
		if pf == 2 && e.netLock[base+fi] == 0 {
			g++
		}
		if pt == 1 && e.netLock[base+ti] == 0 {
			g--
		}
	}
	return g
}

// dirWindow is the feasible move region of §3.5 for one (F, T) direction,
// hoisted out of the per-candidate admissibility test. Block sizes are
// frozen at construction, which is valid for the duration of one selectBest
// scan of the direction (sizes only change when a move is applied).
type dirWindow struct {
	szMax int
	// Resource-vector fields, meaningful only when the engine's nres > 0:
	// packHead is the destination's packed dominant-resource headroom (see
	// the resPack field comment for the exactness argument), t the
	// destination block for the exact fallback test, and closed marks a
	// retired direction — some resource axis has zero headroom while every
	// candidate cell demands at least one unit of it, so no candidate can
	// be admissible and the selection loop skips the bucket entirely.
	packHead int32
	t        partition.BlockID
	closed   bool
}

// dirWindowFor freezes the §3.5 bounds for moves from F to T, reduced to
// the largest admissible cell size. The integer limits winUpInt/winLowInt
// (prepare) are exact equivalents of the float comparisons sizeAdmissible
// has always used: float64(sizeT+sz) > upLim rejects iff sizeT+sz > ⌊upLim⌋,
// and float64(sizeF−sz) < lowLim rejects iff sizeF−sz < ⌈lowLim⌉ — integer
// block sizes are exactly representable, so the reduction cannot flip a
// borderline decision.
func (e *Engine) dirWindowFor(f, t partition.BlockID) dirWindow {
	w := dirWindow{szMax: math.MaxInt, packHead: math.MaxInt32, t: t}
	if e.cfg.DisableWindows {
		return w
	}
	if t != e.remainder {
		w.szMax = e.winUpInt - e.p.Size(t)
		if e.nres > 0 {
			// Componentwise §3.5 upper windows for the extra resource
			// axes. The remainder destination stays exempt, mirroring the
			// scalar size window.
			head := int32(math.MaxInt32)
			for r := 0; r < e.nres; r++ {
				hr := e.resUpInt[r] - e.p.Res(t, r)
				if hr <= 0 {
					hr = 0
					if e.resMinDem[r] > 0 {
						w.closed = true // this axis's window closed for every candidate
					}
				}
				if ph := int32(int64(hr) * packScale / int64(e.p.ResCap(r))); ph < head {
					head = ph
				}
			}
			w.packHead = head
		}
	}
	if f != e.remainder {
		if v := e.p.Size(f) - e.winLowInt; v < w.szMax {
			w.szMax = v
		}
	}
	return w
}

// admits reports whether moving a cell of the given size stays inside the
// window.
func (w dirWindow) admits(sz int) bool { return sz <= w.szMax }

// packScale is the fixed-point scale of the packed dominant-resource
// bound. Demands and caps are int32-sized, so demand·packScale fits int64
// with room to spare; resPack saturates at MaxInt32 only for demands over
// 2000× the axis cap, far past anything a feasible run can see (and such a
// cell is rejected upstream as unsplittable).
const packScale = 1 << 20

// admitsCell applies the full move region to cell v: the scalar size
// window first (the only test scalar devices ever run), then the packed
// dominant-resource bound, falling back to the exact componentwise check
// on a packed reject so the packing never changes an outcome.
//
// The selection loops inline this by hand as
// win.admits(int(e.szOf[vi])) && (e.nres == 0 || e.admitsRes(win, vi))
// — as one function the inlined resAdmits fallback pushes it past the
// inlining budget, and the scalar hot path cannot afford a call per
// scanned candidate. admitsCell stays as the one-line spelling for the
// cold call sites and as documentation of the contract.
func (e *Engine) admitsCell(win dirWindow, vi int32) bool {
	return win.admits(int(e.szOf[vi])) && (e.nres == 0 || e.admitsRes(win, vi))
}

// admitsRes is the resource-vector half of admitsCell: the packed
// dominant-resource accept, then the exact componentwise fallback. Only
// meaningful (and only called) when e.nres > 0.
func (e *Engine) admitsRes(win dirWindow, vi int32) bool {
	if e.resPack[vi] <= win.packHead {
		return true
	}
	return e.resAdmits(hypergraph.NodeID(vi), win.t)
}

// resAdmits is the exact componentwise resource window test for moving
// cell v into block t.
func (e *Engine) resAdmits(v hypergraph.NodeID, t partition.BlockID) bool {
	for r := 0; r < e.nres; r++ {
		d := e.p.ResDemandOf(v, r)
		if d != 0 && e.p.Res(t, r)+d > e.resUpInt[r] {
			return false
		}
	}
	return true
}

// windowLimits derives the integer §3.5 limits from the current Improve
// context (allowOver, the active block set). prepare caches the result in
// winUpInt/winLowInt for the selection loop; those fields only go stale if
// the context changes without a prepare call, which production code never
// does.
func (e *Engine) windowLimits() (upInt, lowInt int) {
	smax := float64(e.p.Device().SMax())
	up := smax // strict feasibility once M is reached (§3.5 rule 1)
	if e.allowOver {
		up = smax * e.cfg.Windows.Upper
	}
	lower := e.cfg.Windows.LowerMulti
	if len(e.blocks) == 2 {
		lower = e.cfg.Windows.Lower2
	}
	return int(math.Floor(up)), int(math.Ceil(lower * smax))
}

// prepareRes freezes the per-axis integer resource limits and the packed
// per-cell demand bounds for one Improve call. Scalar devices only reset
// nres to zero; the O(n·R) packing runs for resource-vector devices alone.
func (e *Engine) prepareRes() {
	e.nres = e.p.NumRes()
	if e.nres == 0 {
		return
	}
	e.resUpInt = e.resUpInt[:0]
	e.resMinDem = e.resMinDem[:0]
	for r := 0; r < e.nres; r++ {
		up := float64(e.p.ResCap(r))
		if e.allowOver {
			up *= e.cfg.Windows.Upper
		}
		// ⌊up⌋ is exact for the same reason as winUpInt: demand totals are
		// integers, so total > up iff total > ⌊up⌋.
		e.resUpInt = append(e.resUpInt, int(math.Floor(up)))
		e.resMinDem = append(e.resMinDem, math.MaxInt)
	}
	n := e.h.NumNodes()
	if cap(e.resPack) < n {
		e.resPack = make([]int32, n)
	}
	e.resPack = e.resPack[:n]
	for v := 0; v < n; v++ {
		pack := int64(0)
		for r := 0; r < e.nres; r++ {
			d := e.p.ResDemandOf(hypergraph.NodeID(v), r)
			if d < e.resMinDem[r] {
				e.resMinDem[r] = d
			}
			c := int64(e.p.ResCap(r))
			if p := (int64(d)*packScale + c - 1) / c; p > pack {
				pack = p
			}
		}
		if pack > math.MaxInt32 {
			pack = math.MaxInt32
		}
		e.resPack[v] = int32(pack)
	}
}

// sizeAdmissible applies the feasible move region of §3.5 to moving a cell
// of the given size from F to T. Off the hot path (selectBest goes through
// dirWindowFor directly), it re-derives the limits from the engine's
// current fields rather than trusting the prepare-time cache.
func (e *Engine) sizeAdmissible(sz int, f, t partition.BlockID) bool {
	e.winUpInt, e.winLowInt = e.windowLimits()
	return e.dirWindowFor(f, t).admits(sz)
}

// parallelInitThreshold is the minimum number of (cell, direction) gain
// computations before initPass fans its gain computation out across a
// worker pool; below it the goroutine overhead outweighs the work. A
// package variable so tests can force the parallel path on small fixtures.
var parallelInitThreshold = 4096

// parallelInitWorkers overrides the initPass worker count when positive;
// zero selects min(GOMAXPROCS, 8). Tests set it to exercise the worker
// pool on machines where GOMAXPROCS is 1.
var parallelInitWorkers = 0

// parallelFlushThreshold is the minimum estimated pin-visit count (sum of
// traced net degrees) above which deltaUpdate accumulates gain deltas in
// parallel. Moves below it — the overwhelming majority — stay on the fused
// serial path.
var parallelFlushThreshold = 4096

// parallelFlushWorkers overrides the flush worker count when positive; zero
// selects min(GOMAXPROCS, 8). Tests set it to exercise the sharded path on
// machines where GOMAXPROCS is 1.
var parallelFlushWorkers = 0

// flushShards is the fixed shard count of the parallel flush. It is
// independent of the worker count: shards are contiguous, index-ordered
// ranges of the dirty-cell list, each owned by exactly one worker, so the
// accumulated deltas are bit-identical at any GOMAXPROCS.
const flushShards = 8

// initPass fills the direction buckets with every unlocked cell of every
// active block and clears locks.
//
// Seed gains are pure reads of the partition — independent per (cell,
// direction) — so they are computed into gainBuf by a bounded worker pool
// when the pass is large enough. Bucket insertion stays serial and follows
// the exact (cell ascending, direction ascending) order the serial path
// used, so the LIFO seed order of every gain list is identical regardless
// of worker count.
func (e *Engine) initPass() {
	n := e.h.NumNodes()
	maxG := e.h.MaxDegree()
	if e.cfg.PinGain {
		maxG *= 2 // pin deltas reach ±2 per net
	}
	nd := e.nb() * (e.nb() - 1)
	if e.slab == nil || n != e.bucketN || maxG != e.bucketMaxG || e.slab.Dirs() < nd {
		// The slab is sized by cell count, gain range, and direction count;
		// an engine rebound to wider dimensions (pooled reuse, a PinGain
		// variant, more active blocks) rebuilds the whole family in one
		// allocation burst. Narrower passes reuse a prefix of the slab.
		e.slab = gain.NewSlab(nd, n, maxG)
		e.bucketN, e.bucketMaxG = n, maxG
	}
	if cap(e.buckets) < nd {
		e.buckets = make([]*gain.Bucket, nd)
	}
	e.buckets = e.buckets[:nd]
	for d := range e.buckets {
		e.buckets[d] = e.slab.Bucket(d)
		e.buckets[d].Clear()
	}
	for i := range e.locked {
		e.locked[i] = false
	}
	clear(e.netLock)
	for i := range e.cellRev {
		e.cellRev[i]++ // locks reset: every cached level-2 gain is stale
	}
	if cap(e.dirCand) < nd {
		e.dirCand = make([]dirCand, nd)
	}
	e.dirCand = e.dirCand[:nd]
	for i := range e.dirCand {
		e.dirCand[i] = dirCand{}
	}

	e.activeV = e.activeV[:0]
	if e.subset != nil {
		// Boundary-restricted pass: only the caller's candidate cells are
		// seeded into the buckets. Cells that left the active blocks since
		// the list was built are filtered here, per pass, so the list stays
		// valid across a whole Improve call.
		for _, v := range e.subset {
			if e.blkIdx[e.p.Block(v)] >= 0 {
				e.activeV = append(e.activeV, int32(v))
			}
		}
	} else {
		for v := 0; v < n; v++ {
			if e.blkIdx[e.p.Block(hypergraph.NodeID(v))] >= 0 {
				e.activeV = append(e.activeV, int32(v))
			}
		}
	}
	slots := e.nb() - 1
	need := len(e.activeV) * slots
	if cap(e.gainBuf) < need {
		e.gainBuf = make([]int32, need)
	}
	e.gainBuf = e.gainBuf[:need]

	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := hypergraph.NodeID(e.activeV[i])
			b := e.p.Block(v)
			fi := e.blkIdx[b]
			o := i * slots
			s := 0
			for ti := range e.blocks {
				if ti == fi {
					continue
				}
				e.gainBuf[o+s] = int32(e.cellGain(v, b, e.blocks[ti]))
				s++
			}
		}
	}
	if !e.cfg.PinGain {
		// First-level gains decompose per net: a span-1 net with other pins
		// contributes −1 to every direction, and a span-2 net with v as the
		// sole F pin contributes +1 to exactly one direction (its second
		// endpoint). One net sweep per cell therefore fills all k−1 slots —
		// O(deg) instead of O(k·deg) — which dominates initPass on the
		// large-k Table 6 devices. The per-direction cellGain path above is
		// kept for PinGain, whose per-net delta depends on the destination.
		fill = func(lo, hi int) {
			acc := make([]int32, slots)
			for i := lo; i < hi; i++ {
				v := hypergraph.NodeID(e.activeV[i])
				b := e.p.Block(v)
				fi := e.blkIdx[b]
				var common int32
				clearInt32s(acc)
				for _, net := range e.h.NodeNets(v) {
					switch e.p.Span(net) {
					case 1:
						if e.h.NetDegree(net) > 1 {
							common--
						}
					case 2:
						if e.p.PinCount(net, b) != 1 {
							continue
						}
						ob := e.p.OtherBlock(net, b)
						if si := e.blkIdx[ob]; si >= 0 {
							if si > fi {
								si--
							}
							acc[si]++
						}
					}
				}
				o := i * slots
				for s := 0; s < slots; s++ {
					e.gainBuf[o+s] = acc[s] + common
				}
			}
		}
	}
	workers := parallelInitWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if need < parallelInitThreshold || workers < 2 {
		fill(0, len(e.activeV))
	} else {
		var wg sync.WaitGroup
		chunk := (len(e.activeV) + workers - 1) / workers
		for lo := 0; lo < len(e.activeV); lo += chunk {
			hi := lo + chunk
			if hi > len(e.activeV) {
				hi = len(e.activeV)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fill(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Insert direction-major: one bucket's list arrays stay hot while all of
	// its cells stream in, instead of touching k−1 buckets per cell. LIFO
	// lists only order cells within one direction, and cells arrive in the
	// same ascending order under either loop nesting, so every seeded gain
	// list is identical to the cell-major order's. A counting sort groups
	// the active cells by source block, keeping ascending order per group.
	nbk := e.nb()
	if cap(e.blkOff) < nbk+1 {
		e.blkOff = make([]int32, nbk+1)
	}
	e.blkOff = e.blkOff[:nbk+1]
	for i := range e.blkOff {
		e.blkOff[i] = 0
	}
	if cap(e.blkCells) < len(e.activeV) {
		e.blkCells = make([]int32, len(e.activeV))
	}
	e.blkCells = e.blkCells[:len(e.activeV)]
	for _, vi := range e.activeV {
		e.blkOff[e.blkIdx[e.p.Block(hypergraph.NodeID(vi))]+1]++
	}
	for i := 1; i <= nbk; i++ {
		e.blkOff[i] += e.blkOff[i-1]
	}
	// Fill with blkOff[fi] as a moving cursor; afterwards blkOff[fi] is the
	// END of group fi, so groups are recovered as [prev end, blkOff[fi]).
	for i, vi := range e.activeV {
		fi := e.blkIdx[e.p.Block(hypergraph.NodeID(vi))]
		e.blkCells[e.blkOff[fi]] = int32(i)
		e.blkOff[fi]++
	}
	start := int32(0)
	for fi := 0; fi < nbk; fi++ {
		end := e.blkOff[fi]
		group := e.blkCells[start:end]
		start = end
		base := fi * slots
		for s := 0; s < slots; s++ {
			bk := e.buckets[base+s]
			for _, i := range group {
				bk.Insert(e.activeV[i], int(e.gainBuf[int(i)*slots+s]))
			}
			e.st.BucketOps += len(group)
		}
	}
}

// candidate is a tentative best move.
type candidate struct {
	v     hypergraph.NodeID
	from  partition.BlockID
	to    partition.BlockID
	g1    int
	g2    int
	hasG2 bool
	lv    []int // levels 2..GainLevels, computed lazily
	bal   int   // S_FROM - S_TO at selection time
}

// dirCand is the cached local winner of one direction: the candidate the
// direction would contribute to a full selection scan, computed without
// reference to any other direction. The entry stays valid until a move
// dirties the direction — a clean direction's bucket, windows, balance,
// locks, and level-2 gains are all untouched, so its local winner cannot
// change — and while it holds, selectBest reads the winner back in O(1)
// instead of rescanning the gain list. On the large-k Table 6 devices a
// move dirties only ~4k of the k·(k−1) directions, so this removes almost
// the entire selection scan.
type dirCand struct {
	valid       bool
	has         bool // direction contributes a candidate
	v           int32
	g1, g2, bal int32
}

// disableDirBound turns the per-direction candidate cache off; the
// differential test proves the cache never changes a selection.
var disableDirBound = false

// selectBest scans all directions for the best admissible move under the
// ordering (g1, g2, S_FROM−S_TO). Returns ok=false when no admissible move
// exists.
func (e *Engine) selectBest(scratch []int32) (candidate, bool) {
	var best candidate
	found := false
	better := func(c candidate) bool {
		if !found {
			return true
		}
		if c.g1 != best.g1 {
			return c.g1 > best.g1
		}
		if e.cfg.GainLevels >= 3 {
			// c is always a fresh candidate (lv nil on entry) and best.lv
			// is only ever written here, so the two engine scratch buffers
			// never alias: lvCand backs c.lv, lvBest backs best.lv.
			if c.lv == nil {
				e.lvCand = e.gainLevels(c.v, c.from, c.to, e.cfg.GainLevels, e.lvCand)
				c.lv = e.lvCand
			}
			if best.lv == nil {
				e.lvBest = e.gainLevels(best.v, best.from, best.to, e.cfg.GainLevels, e.lvBest)
				best.lv = e.lvBest
			}
			for i := range c.lv {
				if c.lv[i] != best.lv[i] {
					return c.lv[i] > best.lv[i]
				}
			}
		} else if e.cfg.UseLevel2 {
			if !c.hasG2 {
				c.g2 = e.gain2Of(c.v, c.from, c.to)
				c.hasG2 = true
			}
			if !best.hasG2 {
				best.g2 = e.gain2Of(best.v, best.from, best.to)
				best.hasG2 = true
			}
			if c.g2 != best.g2 {
				return c.g2 > best.g2
			}
		}
		return c.bal > best.bal
	}
	// The candidate cache assumes the selection order is exactly (g1, g2,
	// bal); deeper Krishnamurthy levels compare lv vectors instead, so it
	// is restricted to the published configuration.
	fast := e.cfg.UseLevel2 && e.cfg.GainLevels < 3
	if fast && !disableDirBound && len(e.dirCand) > 0 {
		return e.selectBestCached(scratch)
	}
	for fi := range e.blocks {
		for ti := range e.blocks {
			if ti == fi {
				continue
			}
			d := e.dirIndex(fi, ti)
			bk := e.buckets[d]
			topG, ok := bk.MaxGain()
			if !ok {
				continue
			}
			if found && topG < best.g1 {
				continue // cannot beat the current best on g1
			}
			f, t := e.blocks[fi], e.blocks[ti]
			bal := e.p.Size(f) - e.p.Size(t)
			win := e.dirWindowFor(f, t)
			if win.closed {
				continue // retired: a resource window closed for every candidate
			}
			// Examine the top gain list first (bounded), then descend
			// until one admissible cell is found.
			scratch = scratch[:0]
			scratch = bk.TopN(e.cfg.TieWidth, scratch)
			examined := false
			for _, vi := range scratch {
				v := hypergraph.NodeID(vi)
				e.st.MovesEvaluated++
				if !win.admits(int(e.szOf[vi])) || (e.nres > 0 && !e.admitsRes(win, vi)) {
					e.st.MovesGated++
					continue
				}
				examined = true
				if !fast {
					c := candidate{v: v, from: f, to: t, g1: topG, bal: bal}
					if better(c) {
						if !c.hasG2 && e.cfg.UseLevel2 {
							c.g2 = e.gain2Of(c.v, c.from, c.to)
							c.hasG2 = true
						}
						best, found = c, true
					}
					continue
				}
				// Published configuration: the selection key is exactly
				// (g1, g2, bal), inlined here without candidate copies —
				// this comparison is the single hottest statement of a run.
				// g1 (= topG) and bal are direction constants, so cells in
				// the same top list compete on g2 alone, ties keeping the
				// earlier (LIFO) cell, exactly as the generic comparator.
				if found && topG == best.g1 {
					cg2 := e.gain2Of(v, f, t)
					if !best.hasG2 {
						best.g2 = e.gain2Of(best.v, best.from, best.to)
						best.hasG2 = true
					}
					if cg2 < best.g2 || (cg2 == best.g2 && bal <= best.bal) {
						continue
					}
					best = candidate{v: v, from: f, to: t, g1: topG, bal: bal, g2: cg2, hasG2: true}
					continue
				}
				if found && topG < best.g1 {
					continue
				}
				best = candidate{v: v, from: f, to: t, g1: topG, bal: bal,
					g2: e.gain2Of(v, f, t), hasG2: true}
				found = true
			}
			if !examined {
				// Whole top list inadmissible: descend in gain order for
				// the first admissible cell (bounded scan).
				limit := 64
				bk.ScanFrom(func(vi int32, g int) bool {
					limit--
					if limit < 0 {
						return false
					}
					if found && g < best.g1 {
						return false
					}
					v := hypergraph.NodeID(vi)
					e.st.MovesEvaluated++
					if !win.admits(int(e.szOf[vi])) || (e.nres > 0 && !e.admitsRes(win, vi)) {
						e.st.MovesGated++
						return true
					}
					c := candidate{v: v, from: f, to: t, g1: g, bal: bal}
					if better(c) {
						best, found = c, true
					}
					return false // direction contributes its best admissible only
				})
			}
		}
	}
	return best, found
}

// selectBestCached is selectBest for the published (g1, g2, bal) selection
// order, backed by the per-direction candidate cache: clean directions
// contribute their cached local winner in a few loads, dirty directions are
// re-evaluated once. Directions are visited in the same fixed (source,
// destination) order as the full scan and a strict key improvement is
// required to take the lead, so the selected move is identical — the
// differential test drives both paths over random instances to prove it.
func (e *Engine) selectBestCached(scratch []int32) (candidate, bool) {
	var bv, bg1, bg2, bbal int32
	bfi, bti := 0, 0
	found := false
	nb := e.nb()
	d := 0
	for fi := 0; fi < nb; fi++ {
		for ti := 0; ti < nb; ti++ {
			if ti == fi {
				continue
			}
			c := &e.dirCand[d]
			if !c.valid {
				if found {
					// A dirty direction whose bucket's best gain is strictly
					// below the incumbent's g1 cannot take the lead (its
					// local winner has g1 ≤ MaxGain, and the descent fallback
					// only goes lower), so defer its recompute: it stays
					// dirty and is probed again — one MaxGain load — on the
					// next scan. The selected move is unchanged.
					if mg, ok := e.buckets[d].MaxGain(); ok && int32(mg) < bg1 {
						d++
						continue
					}
				}
				scratch = e.computeDirCand(d, fi, ti, scratch)
			}
			d++
			if !c.has {
				continue
			}
			if found {
				if c.g1 != bg1 {
					if c.g1 < bg1 {
						continue
					}
				} else if c.g2 != bg2 {
					if c.g2 < bg2 {
						continue
					}
				} else if c.bal <= bbal {
					continue
				}
			}
			bv, bg1, bg2, bbal = c.v, c.g1, c.g2, c.bal
			bfi, bti = fi, ti
			found = true
		}
	}
	if !found {
		return candidate{}, false
	}
	return candidate{v: hypergraph.NodeID(bv), from: e.blocks[bfi], to: e.blocks[bti],
		g1: int(bg1), g2: int(bg2), hasG2: true, bal: int(bbal)}, true
}

// computeDirCand evaluates direction d (blocks[fi] → blocks[ti]) in
// isolation and caches its local winner: the admissible top-list cell with
// the highest level-2 gain (earliest on ties — g1 and balance are direction
// constants), or, when the whole top list is gated, the first admissible
// cell within a bounded descent of the gain list. The computation never
// reads the incumbent best of the surrounding scan, so the entry is exactly
// the contribution a full scan would extract from this direction, for any
// incumbent, as long as the direction stays clean.
func (e *Engine) computeDirCand(d, fi, ti int, scratch []int32) []int32 {
	c := &e.dirCand[d]
	*c = dirCand{valid: true}
	bk := e.buckets[d]
	topG, ok := bk.MaxGain()
	if !ok {
		return scratch
	}
	f, t := e.blocks[fi], e.blocks[ti]
	bal := int32(e.p.Size(f) - e.p.Size(t))
	win := e.dirWindowFor(f, t)
	if win.closed {
		return scratch // retired: the direction contributes nothing
	}
	scratch = scratch[:0]
	scratch = bk.TopN(e.cfg.TieWidth, scratch)
	for _, vi := range scratch {
		e.st.MovesEvaluated++
		if !win.admits(int(e.szOf[vi])) || (e.nres > 0 && !e.admitsRes(win, vi)) {
			e.st.MovesGated++
			continue
		}
		g2 := int32(e.gain2Of(hypergraph.NodeID(vi), f, t))
		if !c.has || g2 > c.g2 {
			c.has = true
			c.v = vi
			c.g1 = int32(topG)
			c.g2 = g2
			c.bal = bal
		}
	}
	if c.has {
		return scratch
	}
	// Whole top list inadmissible: descend in gain order for the first
	// admissible cell (bounded scan, same 64-entry window the full scan
	// uses — the bucket is unchanged while the direction is clean, so the
	// window covers the same cells).
	limit := 64
	bk.ScanFrom(func(vi int32, g int) bool {
		limit--
		if limit < 0 {
			return false
		}
		e.st.MovesEvaluated++
		if !win.admits(int(e.szOf[vi])) || (e.nres > 0 && !e.admitsRes(win, vi)) {
			e.st.MovesGated++
			return true
		}
		c.has = true
		c.v = vi
		c.g1 = int32(g)
		c.g2 = int32(e.gain2Of(hypergraph.NodeID(vi), f, t))
		c.bal = bal
		return false // direction contributes its first admissible only
	})
	return scratch
}

// cutContrib returns the contribution of one net to the cut gain of a cell
// sitting in block A, moving toward a destination block, given the net's
// pin count in A, its pin count in the destination, and its span. It
// mirrors the per-net case analysis of gain1 exactly (including the
// else-chain: a single-pin net has pcA == 1 and span == 1 and contributes
// nothing).
func cutContrib(pcA, pcDest, span int32) int32 {
	if pcA == 1 {
		if span == 2 && pcDest > 0 {
			return 1
		}
		return 0
	}
	if span == 1 {
		return -1
	}
	return 0
}

// pinContrib is cutContrib's counterpart for the PinGain model, mirroring
// the per-net body of gainPin.
func pinContrib(pcA, pcDest, span int32) int32 {
	fromLeft := pcA == 1
	toJoined := pcDest == 0
	spanAfter := span
	if fromLeft {
		spanAfter--
	}
	if toJoined {
		spanAfter++
	}
	wasCut, isCut := span >= 2, spanAfter >= 2
	switch {
	case wasCut && isCut:
		var g int32
		if fromLeft {
			g++
		}
		if toJoined {
			g--
		}
		return g
	case wasCut && !isCut:
		return 2
	case !wasCut && isCut:
		return -2
	}
	return 0
}

// applyMove commits the move, locks the cell, and updates the gains of
// affected unlocked cells.
//
// The default path is the incremental delta-gain kernel: for every net
// incident to the moved cell it re-evaluates — from the net's pin-count
// transition alone — the per-net gain contribution of each unlocked
// neighbour, in only the directions that can change. For both gain models
// the per-net contribution of a cell in block A toward block B is a
// function of (pins(A), pins(B), span); a move F→T changes the pin counts
// of F and T only, so contributions change only where A ∈ {F, T} (source
// counts changed) or B ∈ {F, T} (destination counts changed). A direction
// between two uninvolved blocks cannot change: the net always has a pin on
// the moved cell (in F before, T after), which rules out the span == 1 and
// span == 2 configurations those contributions would need to differ. Span
// transitions are captured exactly by the partition's NetDelta trace, so
// no fallback recompute is needed; the wholesale path survives as
// Config.DisableDeltaGain and produces bit-identical trajectories (the
// differential tests assert this).
func (e *Engine) applyMove(c candidate) {
	v := c.v
	fi := e.blkIdx[c.from]
	// Remove v from its outgoing buckets.
	for ti := range e.blocks {
		if ti == fi {
			continue
		}
		e.buckets[e.dirIndex(fi, ti)].Remove(int32(v))
		e.st.BucketOps++
	}
	// Dirty the candidate cache: only directions whose source or
	// destination is a move endpoint see their buckets, sizes, locks, or
	// level-2 gains change (the same locality argument the delta kernel
	// rests on), so only those local winners are dropped.
	if len(e.dirCand) > 0 {
		ti := e.blkIdx[c.to]
		for j := range e.blocks {
			if j != fi {
				e.dirCand[e.dirIndex(fi, j)] = dirCand{}
				e.dirCand[e.dirIndex(j, fi)] = dirCand{}
			}
			if j != ti {
				e.dirCand[e.dirIndex(ti, j)] = dirCand{}
				e.dirCand[e.dirIndex(j, ti)] = dirCand{}
			}
		}
	}
	if e.cfg.DisableDeltaGain {
		e.applyMoveRecompute(c)
		return
	}
	e.netBuf = e.p.MoveTrace(v, c.to, e.netBuf[:0])
	e.locked[v] = true
	e.lockNets(v, e.blkIdx[c.to])
	e.journal = append(e.journal, moveRec{v: v, from: c.from, to: c.to})
	e.deltaUpdate(v, c.from, c.to)
}

// subsetExcluded reports whether u lies outside the restricted move set of
// an ImproveSubsetCtx call. Excluded cells are absent from the gain
// buckets, so every update path must skip them exactly as it skips locked
// cells. Always false for whole-graph improves.
func (e *Engine) subsetExcluded(u hypergraph.NodeID) bool {
	return e.subset != nil && !e.inSubset[u]
}

// lockNets records v's pins as locked in active block index ti on every net
// of v. Locked cells never move again within the pass, so counting at lock
// time keeps netLock exact: netLock[net*nb+bi] equals the number of locked
// pins of net residing in blocks[bi].
func (e *Engine) lockNets(v hypergraph.NodeID, ti int) {
	nb := e.nb()
	for _, net := range e.h.NodeNets(v) {
		e.netLock[int(net)*nb+ti]++
	}
}

// applyMoveRecompute is the wholesale update the delta kernel superseded:
// refresh the gains of every unlocked active cell sharing a net with v, in
// every direction, by recomputation. Kept behind Config.DisableDeltaGain
// for differential testing and ablation.
func (e *Engine) applyMoveRecompute(c candidate) {
	v := c.v
	e.p.Move(v, c.to)
	e.locked[v] = true
	e.lockNets(v, e.blkIdx[c.to])
	e.journal = append(e.journal, moveRec{v: v, from: c.from, to: c.to})
	e.epoch++
	for _, net := range e.h.Nets(v) {
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] || e.subsetExcluded(u) || e.stamp[u] == e.epoch {
				continue
			}
			e.stamp[u] = e.epoch
			e.cellRev[u]++ // level-2 memo: neighbourhood changed
			b := e.p.Block(u)
			ufi := e.blkIdx[b]
			if ufi < 0 {
				continue
			}
			for ti := range e.blocks {
				if ti == ufi {
					continue
				}
				g := e.cellGain(u, b, e.blocks[ti])
				e.buckets[e.dirIndex(ufi, ti)].Update(int32(u), g)
				e.st.BucketOps++
			}
		}
	}
}

// deltaUpdate folds the netBuf trace of a just-applied move v: from→to
// into the gain buckets. Phase 1 accumulates per-(cell, direction) gain
// deltas; phase 2 applies each non-zero delta with a single bucket
// adjustment. Cells are processed in first-touch order and directions in
// ascending order, matching the mutation sequence of the recompute path
// (whose Update short-circuits unchanged gains), so the LIFO lists evolve
// identically on both paths.
func (e *Engine) deltaUpdate(v hypergraph.NodeID, from, to partition.BlockID) {
	nb := e.nb()
	slots := nb - 1
	fi := e.blkIdx[from]
	ti := e.blkIdx[to]
	contrib := cutContrib
	if e.cfg.PinGain {
		contrib = pinContrib
	}
	e.epoch++
	e.touched = e.touched[:0]
	if workers := flushWorkerCount(); workers >= 2 {
		est := 0
		for _, net := range e.h.Nets(v) {
			est += e.h.NetDegree(net)
		}
		if est >= parallelFlushThreshold {
			e.deltaUpdateSharded(v, from, to, fi, ti, slots, contrib, workers)
			return
		}
	}
	for i, net := range e.h.Nets(v) {
		nd := &e.netBuf[i]
		pcFb, pcTb := nd.FromPins, nd.ToPins
		pcFa, pcTa := pcFb-1, pcTb+1
		spanB, spanA := nd.SpanBefore, nd.SpanAfter
		if spanB == spanA && pcFb >= 3 && pcTb >= 2 {
			// No critical transition: the source keeps ≥2 pins, the
			// destination already had ≥2, and the span is unchanged, so
			// both contrib models return identical values before and
			// after for every pin and direction. Only the level-2 memo
			// goes stale (pin counts and v's lock changed on this net):
			// stamp the pins so the flush loop bumps their revision.
			for _, u := range e.h.Pins(net) {
				if u == v || e.locked[u] || e.subsetExcluded(u) {
					continue
				}
				if e.stamp[u] != e.epoch {
					e.stamp[u] = e.epoch
					e.touched = append(e.touched, int32(u))
				}
			}
			continue
		}
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] || e.subsetExcluded(u) {
				continue
			}
			if e.stamp[u] != e.epoch {
				e.stamp[u] = e.epoch
				e.touched = append(e.touched, int32(u))
			}
			b := e.p.Block(u)
			ufi := e.blkIdx[b]
			if ufi < 0 {
				continue
			}
			base := int(u) * slots
			switch b {
			case from:
				if pcFb >= 3 && spanB == spanA {
					continue // pcA stays ≥2 on both sides: no critical transition
				}
				// Source-side pin count changed: every direction shifts.
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == ti {
						before = contrib(pcFb, pcTb, spanB)
						after = contrib(pcFa, pcTa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcFb, pcD, spanB)
						after = contrib(pcFa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			case to:
				if pcTb >= 2 && spanB == spanA {
					continue // pcA stays ≥2 on both sides: no critical transition
				}
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == fi {
						before = contrib(pcTb, pcFb, spanB)
						after = contrib(pcTa, pcFa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcTb, pcD, spanB)
						after = contrib(pcTa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			default:
				// Uninvolved source block: only the directions toward the
				// move's endpoints can change, and only when the move
				// created or destroyed a side — otherwise the pcDest>0 /
				// pcDest==0 flags are identical before and after. A span
				// swap (source's last pin leaves while the destination
				// joins, pcFb==1 ∧ pcTb==0) keeps the span yet flips both
				// flags, so it must not take the shortcut.
				if spanB == spanA && pcFb > 1 {
					continue
				}
				pcA := int32(e.p.PinCount(net, b))
				s := fi
				if fi > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcFa, spanA) - contrib(pcA, pcFb, spanB)
				s = ti
				if ti > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcTa, spanA) - contrib(pcA, pcTb, spanB)
			}
		}
	}

	e.flushTouched(from, to, fi, ti, slots)
}

// flushTouched drains the accumulated gain deltas of every dirty cell into
// the buckets, in first-touch order, restoring accum's all-zero invariant.
// Shared by the fused and sharded flush paths; it is the only writer of the
// buckets and the level-2 memo revisions, so it stays serial.
func (e *Engine) flushTouched(from, to partition.BlockID, fi, ti, slots int) {
	for _, ui := range e.touched {
		u := hypergraph.NodeID(ui)
		e.cellRev[u]++ // level-2 memo: neighbourhood changed
		b := e.p.Block(u)
		ufi := e.blkIdx[b]
		if ufi < 0 {
			continue
		}
		base := int(ui) * slots
		row := ufi * slots
		if b == from || b == to {
			for s := 0; s < slots; s++ {
				if d := e.accum[base+s]; d != 0 {
					e.accum[base+s] = 0
					e.buckets[row+s].Adjust(ui, int(d))
					e.st.BucketOps++
				}
			}
			continue
		}
		// Visit the two candidate directions in ascending destination
		// order, matching the recompute path's direction sweep.
		lo, hi := fi, ti
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, tj := range [2]int{lo, hi} {
			s := tj
			if tj > ufi {
				s--
			}
			if d := e.accum[base+s]; d != 0 {
				e.accum[base+s] = 0
				e.buckets[row+s].Adjust(ui, int(d))
				e.st.BucketOps++
			}
		}
	}
}

// flushWorkerCount resolves the parallel-flush worker count from the
// override or GOMAXPROCS.
func flushWorkerCount() int {
	if parallelFlushWorkers > 0 {
		return parallelFlushWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// deltaUpdateSharded is deltaUpdate for moves whose trace touches enough
// pins to amortize goroutine handoff. It produces bit-identical results to
// the fused path at any worker count:
//
//   - Pass A (serial) stamps dirty cells in the exact first-touch order of
//     the fused scan — stamping precedes every accumulation shortcut there,
//     so the orders coincide — and indexes the traced nets in netIdx.
//   - Pass B (parallel) accumulates gain deltas cell-major: the dirty-cell
//     list is cut into flushShards fixed, index-ordered ranges, each owned
//     by exactly one worker, so every accum row has a single writer.
//     Per-cell contributions sum over that cell's traced nets; integer
//     addition is commutative, so neither shard scheduling nor the worker
//     count can change any total.
//   - The bucket flush reuses the serial flushTouched tail.
func (e *Engine) deltaUpdateSharded(v hypergraph.NodeID, from, to partition.BlockID, fi, ti, slots int, contrib func(pcA, pcDest, span int32) int32, workers int) {
	nets := e.h.Nets(v)
	for i, net := range nets {
		e.netIdx[net] = int32(i)
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] || e.subsetExcluded(u) {
				continue
			}
			if e.stamp[u] != e.epoch {
				e.stamp[u] = e.epoch
				e.touched = append(e.touched, int32(u))
			}
		}
	}
	shards := flushShards
	if shards > len(e.touched) {
		shards = len(e.touched)
	}
	if shards > 0 {
		chunk := (len(e.touched) + shards - 1) / shards
		if workers > shards {
			workers = shards
		}
		var next atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					lo := s * chunk
					if lo >= len(e.touched) {
						continue // ceil rounding can leave trailing empty shards
					}
					hi := lo + chunk
					if hi > len(e.touched) {
						hi = len(e.touched)
					}
					e.accumRange(from, to, fi, ti, slots, contrib, lo, hi)
				}
			}()
		}
		wg.Wait()
	}
	for _, net := range nets {
		e.netIdx[net] = -1
	}
	e.flushTouched(from, to, fi, ti, slots)
}

// accumRange accumulates the gain deltas of the dirty cells in
// touched[lo:hi]. Case analysis mirrors the fused deltaUpdate scan exactly,
// transposed from net-major to cell-major.
func (e *Engine) accumRange(from, to partition.BlockID, fi, ti, slots int, contrib func(pcA, pcDest, span int32) int32, lo, hi int) {
	nb := e.nb()
	for _, ui := range e.touched[lo:hi] {
		u := hypergraph.NodeID(ui)
		b := e.p.Block(u)
		ufi := e.blkIdx[b]
		if ufi < 0 {
			continue
		}
		base := int(ui) * slots
		for _, net := range e.h.NodeNets(u) {
			i := e.netIdx[net]
			if i < 0 {
				continue
			}
			nd := &e.netBuf[i]
			pcFb, pcTb := nd.FromPins, nd.ToPins
			pcFa, pcTa := pcFb-1, pcTb+1
			spanB, spanA := nd.SpanBefore, nd.SpanAfter
			if spanB == spanA && pcFb >= 3 && pcTb >= 2 {
				continue // no critical transition on this net
			}
			switch b {
			case from:
				if pcFb >= 3 && spanB == spanA {
					continue
				}
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == ti {
						before = contrib(pcFb, pcTb, spanB)
						after = contrib(pcFa, pcTa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcFb, pcD, spanB)
						after = contrib(pcFa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			case to:
				if pcTb >= 2 && spanB == spanA {
					continue
				}
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == fi {
						before = contrib(pcTb, pcFb, spanB)
						after = contrib(pcTa, pcFa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcTb, pcD, spanB)
						after = contrib(pcTa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			default:
				if spanB == spanA && pcFb > 1 {
					continue
				}
				pcA := int32(e.p.PinCount(net, b))
				s := fi
				if fi > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcFa, spanA) - contrib(pcA, pcFb, spanB)
				s = ti
				if ti > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcTa, spanA) - contrib(pcA, pcTb, spanB)
			}
		}
	}
}

// stackEntry records a candidate restart solution as a journal prefix.
type stackEntry struct {
	key       partition.Key
	dist      float64 // infeasibility distance, ranking for the infeasible stack
	prefixLen int
	snap      partition.Snapshot
	hasSnap   bool
}

// key evaluates the solution-comparison key under the configured objective.
func (e *Engine) key() partition.Key {
	if e.cfg.CutObjective {
		return partition.Key{F: e.p.CountFeasible(), D: float64(e.p.Cut())}
	}
	return e.p.Key(e.cfg.Cost, e.remainder, e.m)
}

// runPass executes one FM pass over the active blocks: moves cells until no
// admissible move remains, then rolls back to the best prefix. When collect
// is non-nil, every prefix whose key improves on the best-so-far (semi) or
// whose distance improves (infeasible) is offered to the stacks. A
// cancelled ctx ends the pass early; the rollback to the best prefix still
// runs, so the partition is left consistent.
func (e *Engine) runPass(ctx context.Context, collect *stacks) (improved bool, moves int) {
	e.initPass()
	e.journal = e.journal[:0]
	start := e.key()
	best := start
	bestLen := 0
	if cap(e.topScratch) < e.cfg.TieWidth {
		e.topScratch = make([]int32, 0, e.cfg.TieWidth)
	}
	scratch := e.topScratch

	for {
		// Poll cancellation every 64 applied moves so even the long
		// first passes on big circuits abort promptly.
		if moves&63 == 0 && ctx.Err() != nil {
			break
		}
		c, ok := e.selectBest(scratch)
		if !ok {
			break
		}
		e.applyMove(c)
		moves++
		key := e.key()
		if key.Better(best) {
			best = key
			bestLen = len(e.journal)
		}
		if collect != nil {
			collect.offer(e.p.NumBlocks(), key, len(e.journal))
		}
		if e.cfg.EarlyStop > 0 && len(e.journal)-bestLen > e.cfg.EarlyStop {
			break // §5 future work (b): stop drifting from the feasible region
		}
	}

	// Materialize stack snapshots before rolling back (entries reference
	// journal prefixes of this pass).
	if collect != nil {
		collect.materialize(e.p, e.journal, e.takeSnap)
	}

	// Roll back to the best prefix.
	for i := len(e.journal) - 1; i >= bestLen; i-- {
		e.p.Move(e.journal[i].v, e.journal[i].from)
	}
	return best.Better(start), moves
}

// stacks holds the two restart stacks of §3.6.
type stacks struct {
	depth  int
	cost   partition.CostParams
	semi   []stackEntry
	infeas []stackEntry
}

// offer records a prefix in the appropriate stack if it ranks well enough.
// Snapshots are not taken here; materialize replays the journal once at the
// end of the collecting pass. The solution class is derived from the key's
// feasible-block count (k − F ≥ 2 ⇔ infeasible), which holds under both
// the §3.4 key and the CutObjective key — no partition scan needed.
func (s *stacks) offer(k int, key partition.Key, prefixLen int) {
	if s.depth == 0 {
		return
	}
	entry := stackEntry{key: key, dist: key.D, prefixLen: prefixLen}
	if k-key.F >= 2 {
		s.infeas = insertRanked(s.infeas, entry, s.depth, func(a, b stackEntry) bool {
			return a.dist < b.dist
		})
	} else {
		s.semi = insertRanked(s.semi, entry, s.depth, func(a, b stackEntry) bool {
			return a.key.Better(b.key)
		})
	}
}

// insertRanked keeps list sorted best-first, bounded to depth, replacing the
// worst entry when full. Entries with identical rank keys are deduplicated.
func insertRanked(list []stackEntry, ent stackEntry, depth int, less func(a, b stackEntry) bool) []stackEntry {
	for _, ex := range list {
		if ex.key == ent.key {
			return list // duplicate solution quality: keep the earlier one
		}
	}
	pos := sort.Search(len(list), func(i int) bool { return less(ent, list[i]) })
	if pos == len(list) && len(list) >= depth {
		return list
	}
	list = append(list, stackEntry{})
	copy(list[pos+1:], list[pos:])
	list[pos] = ent
	if len(list) > depth {
		list = list[:depth]
	}
	return list
}

// materialize converts journal-prefix entries into real snapshots by
// replaying the pass journal from its start state. Called exactly once, at
// the end of the collecting pass, while the journal is fully applied. take
// snapshots the partition's current state (the engine passes takeSnap, so
// the buffers come from the freelist).
func (s *stacks) materialize(p *partition.Partition, journal []moveRec, take func() partition.Snapshot) {
	all := append(append([]*stackEntry{}, refs(s.semi)...), refs(s.infeas)...)
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].prefixLen > all[j].prefixLen })
	// Walk backwards from the fully-applied state, undoing moves and
	// snapshotting at each requested prefix length.
	pos := len(journal)
	for _, ent := range all {
		for pos > ent.prefixLen {
			pos--
			p.Move(journal[pos].v, journal[pos].from)
		}
		ent.snap = take()
		ent.hasSnap = true
	}
	// Reapply to return to the fully-applied state runPass expects.
	for ; pos < len(journal); pos++ {
		p.Move(journal[pos].v, journal[pos].to)
	}
}

func refs(list []stackEntry) []*stackEntry {
	out := make([]*stackEntry, len(list))
	for i := range list {
		out[i] = &list[i]
	}
	return out
}

// Improve runs the full §3.6 improvement procedure over the given active
// blocks: a pass series from the current solution (collecting restart
// solutions during the first pass), then a pass series from each stacked
// semi-feasible and infeasible solution, finally restoring the best solution
// seen. remainder designates the current remainder block (NoBlock for
// contexts without one), and m is the device lower bound M.
func (e *Engine) Improve(blocks []partition.BlockID, remainder partition.BlockID, m int) Stats {
	st, _ := e.ImproveCtx(context.Background(), blocks, remainder, m)
	return st
}

// prepare initializes the per-Improve state: the active block set and its
// index, the move-window context, and every scratch buffer the pass loop
// reuses. Split out of ImproveCtx so tests can drive individual passes.
func (e *Engine) prepare(blocks []partition.BlockID, remainder partition.BlockID, m int) {
	e.blocks = blocks
	e.remainder = remainder
	e.m = m
	e.allowOver = e.p.NumBlocks() <= m
	e.winUpInt, e.winLowInt = e.windowLimits()
	e.prepareRes()
	if cap(e.blkIdx) < e.p.NumBlocks() {
		e.blkIdx = make([]int, e.p.NumBlocks())
	}
	e.blkIdx = e.blkIdx[:e.p.NumBlocks()]
	for i := range e.blkIdx {
		e.blkIdx[i] = -1
	}
	for i, b := range blocks {
		e.blkIdx[b] = i
	}
	// Size the delta-gain accumulator: one pending delta per (cell,
	// outgoing-direction slot). It is all-zero between moves by invariant;
	// re-zero defensively because the slot layout changes with the active
	// block count.
	slots := len(blocks) - 1
	if need := e.h.NumNodes() * slots; cap(e.accum) < need {
		e.accum = make([]int32, need)
	} else {
		e.accum = e.accum[:need]
		for i := range e.accum {
			e.accum[i] = 0
		}
	}
	if cap(e.touched) < e.h.NumNodes() {
		e.touched = make([]int32, 0, e.h.NumNodes())
	}
	// Level-2 gain memo, laid out like accum. No clearing needed: entries
	// are only trusted when their stamp matches the cell revision, and
	// initPass advances every revision past any stamp written earlier.
	if need := e.h.NumNodes() * slots; cap(e.g2cache) < need {
		e.g2cache = make([]int32, need)
		e.g2stamp = make([]int32, need)
	} else {
		e.g2cache = e.g2cache[:need]
		e.g2stamp = e.g2stamp[:need]
	}
	if cap(e.cellRev) < e.h.NumNodes() {
		e.cellRev = make([]int32, e.h.NumNodes())
	}
	e.cellRev = e.cellRev[:e.h.NumNodes()]
	if e.netBuf == nil {
		// Must be non-nil even when empty: MoveTrace records nothing into
		// a nil buffer.
		e.netBuf = make([]partition.NetDelta, 0, e.h.MaxDegree())
	}
	if len(e.szOf) != e.h.NumNodes() {
		e.szOf = make([]int32, e.h.NumNodes())
		for v := range e.szOf {
			e.szOf[v] = int32(e.h.SizeOf(hypergraph.NodeID(v)))
		}
	}
	// Locked-pin counters, one row per net over the active blocks. initPass
	// zeroes them each pass; sizing here re-zeroes too because the row
	// stride follows the active block count.
	if need := e.h.NumNets() * len(blocks); cap(e.netLock) < need {
		e.netLock = make([]int32, need)
	} else {
		e.netLock = e.netLock[:need]
		clear(e.netLock)
	}
	if len(e.netIdx) != e.h.NumNets() {
		e.netIdx = make([]int32, e.h.NumNets())
		for i := range e.netIdx {
			e.netIdx[i] = -1
		}
	}
}

// ImproveSubsetCtx is ImproveCtx restricted to a candidate cell set: only
// the listed cells (those currently in an active block — the filter is
// re-applied every pass) are seeded into the gain buckets, instead of every
// cell of every active block. Multilevel refinement uses it to run bounded
// FM passes over boundary cells only, where activating a full million-node
// level per block pair would be quadratic. cells must be sorted by ID and
// duplicate-free — bucket seeding order is part of the deterministic
// trajectory contract. The restriction clears when the call returns.
//
// Moves remain exact: gain maintenance, windows, and rollback all operate
// on the real partition; restricting the candidate set only narrows which
// cells may move.
func (e *Engine) ImproveSubsetCtx(ctx context.Context, blocks []partition.BlockID, remainder partition.BlockID, m int, cells []hypergraph.NodeID) (Stats, error) {
	e.subset = cells
	n := e.h.NumNodes()
	if cap(e.inSubset) < n {
		e.inSubset = make([]bool, n)
	}
	e.inSubset = e.inSubset[:n]
	for _, v := range cells {
		e.inSubset[v] = true
	}
	defer func() {
		for _, v := range cells {
			e.inSubset[v] = false
		}
		e.subset = nil
	}()
	return e.ImproveCtx(ctx, blocks, remainder, m)
}

// ImproveCtx is Improve with cancellation: the pass loop polls ctx and
// aborts promptly when it is cancelled or its deadline passes, restoring
// the best solution seen so far (the partition is always left consistent)
// and returning ctx's error alongside the partial Stats.
func (e *Engine) ImproveCtx(ctx context.Context, blocks []partition.BlockID, remainder partition.BlockID, m int) (Stats, error) {
	var st Stats
	if len(blocks) < 2 {
		return st, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return st, err // don't even fill the buckets on a dead context
	}
	e.st = &st
	defer func() { e.st = new(Stats) }()
	e.prepare(blocks, remainder, m)

	collect := &stacks{depth: e.cfg.StackDepth, cost: e.cfg.Cost}
	startKey := e.key()

	series := func(col *stacks) {
		for pass := 0; pass < e.cfg.MaxPasses; pass++ {
			var c *stacks
			if col != nil && pass == 0 {
				c = col
			}
			improved, moves := e.runPass(ctx, c)
			st.Passes++
			st.MovesApplied += moves
			if !improved || ctx.Err() != nil {
				break
			}
		}
	}

	series(collect)
	bestKey := e.key()
	bestSnap := e.takeSnap()

	restart := func(label string, ents []stackEntry) {
		for _, ent := range ents {
			if !ent.hasSnap {
				continue
			}
			if ctx.Err() != nil {
				return
			}
			e.p.Restore(ent.snap)
			st.Restarts++
			e.cfg.Obs.Emit(obs.Event{Type: obs.StackRestart, Label: label, Moves: ent.prefixLen})
			series(nil)
			if key := e.key(); key.Better(bestKey) {
				bestKey = key
				e.giveSnap(bestSnap)
				bestSnap = e.takeSnap()
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionAccepted, Label: label})
			} else {
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionRejected, Label: label})
			}
		}
	}
	restart("semi", collect.semi)
	restart("infeasible", collect.infeas)

	e.p.Restore(bestSnap)
	e.giveSnap(bestSnap)
	retireSnaps(e, collect.semi)
	retireSnaps(e, collect.infeas)
	st.Improved = bestKey.Better(startKey)
	return st, ctx.Err()
}

// retireSnaps returns the stack entries' snapshot buffers to the engine's
// freelist once the restart series are done with them.
func retireSnaps(e *Engine, ents []stackEntry) {
	for i := range ents {
		if ents[i].hasSnap {
			e.giveSnap(ents[i].snap)
			ents[i] = stackEntry{}
		}
	}
}

// takeSnap snapshots the current partition into a buffer drawn from the
// snapshot freelist (or a fresh one when the freelist is dry).
func (e *Engine) takeSnap() partition.Snapshot {
	var buf partition.Snapshot
	if n := len(e.snapFree); n > 0 {
		buf = e.snapFree[n-1]
		e.snapFree = e.snapFree[:n-1]
	}
	return e.p.SnapshotInto(buf)
}

// giveSnap retires a snapshot's buffer to the freelist. The caller must not
// use the snapshot afterwards: the next takeSnap overwrites it.
func (e *Engine) giveSnap(s partition.Snapshot) {
	e.snapFree = append(e.snapFree, s)
}
