package sanchis

// Temporary stress harness for the direction-candidate cache equivalence.

import (
	"math/rand"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestDirCandStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	devices := []device.Device{
		{Name: "tiny", DatasheetCells: 8, Pins: 8, Fill: 1.0},
		{Name: "tight", DatasheetCells: 12, Pins: 10, Fill: 1.0},
		{Name: "roomy", DatasheetCells: 20, Pins: 24, Fill: 1.0},
	}
	for seed := int64(1); seed <= 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 40 + r.Intn(160)
		for i := 0; i < n; i++ {
			if r.Intn(8) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(3))
			}
		}
		for e := 0; e < n+r.Intn(2*n); e++ {
			d := 2 + r.Intn(5)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		k := 2 + r.Intn(14)
		assign := make([]partition.BlockID, h.NumNodes())
		for v := range assign {
			assign[v] = partition.BlockID(r.Intn(k))
		}
		for _, dev := range devices {
			m := device.LowerBound(h, dev)
			rem := partition.BlockID(k - 1)
			blocks := make([]partition.BlockID, k)
			for i := range blocks {
				blocks[i] = partition.BlockID(i)
			}
			for _, pin := range []bool{false, true} {
				run := func(disable bool) ([]partition.BlockID, partition.Key, Stats) {
					old := disableDirBound
					disableDirBound = disable
					defer func() { disableDirBound = old }()
					p, err := partition.FromAssignment(h, dev, assign, k)
					if err != nil {
						t.Fatal(err)
					}
					cfg := Default()
					cfg.PinGain = pin
					e := New(p, cfg)
					st := e.Improve(blocks, rem, m)
					out := make([]partition.BlockID, h.NumNodes())
					for v := range out {
						out[v] = p.Block(hypergraph.NodeID(v))
					}
					return out, p.Key(cfg.Cost, rem, m), st
				}
				gotA, keyA, stA := run(false)
				gotB, keyB, stB := run(true)
				if keyA != keyB {
					t.Errorf("seed %d dev %s pin %v: key cached=%v full=%v", seed, dev.Name, pin, keyA, keyB)
				}
				if stA.MovesApplied != stB.MovesApplied || stA.Passes != stB.Passes || stA.BucketOps != stB.BucketOps {
					t.Errorf("seed %d dev %s pin %v: stats cached=(%d moves, %d passes, %d bops) full=(%d, %d, %d)",
						seed, dev.Name, pin, stA.MovesApplied, stA.Passes, stA.BucketOps, stB.MovesApplied, stB.Passes, stB.BucketOps)
				}
				for v := range gotA {
					if gotA[v] != gotB[v] {
						t.Fatalf("seed %d dev %s pin %v: node %d cached=%d full=%d",
							seed, dev.Name, pin, v, gotA[v], gotB[v])
					}
				}
			}
		}
	}
}
