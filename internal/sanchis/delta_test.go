package sanchis

// Tests for the incremental delta-gain move kernel, its equivalence to the
// wholesale recompute path, and the parallel initPass.

import (
	"math/rand"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// randomCircuit builds a random hypergraph with a sprinkling of pads,
// deterministically from r.
func randomCircuit(r *rand.Rand) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	n := 10 + r.Intn(40)
	for i := 0; i < n; i++ {
		if r.Intn(8) == 0 {
			b.AddPad("p")
		} else {
			b.AddInterior("v", 1)
		}
	}
	for e := 0; e < n+r.Intn(2*n); e++ {
		d := 2 + r.Intn(4)
		pins := make([]hypergraph.NodeID, d)
		for i := range pins {
			pins[i] = hypergraph.NodeID(r.Intn(n))
		}
		b.AddNet("e", pins...)
	}
	return b.MustBuild()
}

// TestDeltaGainMatchesRecompute is the differential proof required by the
// kernel: from identical seeds, the delta-gain path and the wholesale
// recompute path must walk bit-identical trajectories — same final
// assignment, same lexicographic solution key, same move counts — across
// devices, block counts, and every gain-model variant.
func TestDeltaGainMatchesRecompute(t *testing.T) {
	devices := []device.Device{
		{Name: "tight", DatasheetCells: 12, Pins: 10, Fill: 1.0},
		{Name: "roomy", DatasheetCells: 20, Pins: 24, Fill: 1.0},
	}
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"pin-gain", func(c *Config) { c.PinGain = true }},
		{"cut-objective", func(c *Config) { c.CutObjective = true }},
		{"deep-levels", func(c *Config) { c.GainLevels = 4 }},
	}
	for seed := int64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := randomCircuit(r)
		k := 2 + r.Intn(4)
		assign := make([]partition.BlockID, h.NumNodes())
		for v := range assign {
			assign[v] = partition.BlockID(r.Intn(k))
		}
		for _, dev := range devices {
			m := device.LowerBound(h, dev)
			rem := partition.BlockID(k - 1)
			blocks := make([]partition.BlockID, k)
			for i := range blocks {
				blocks[i] = partition.BlockID(i)
			}
			for _, vt := range variants {
				run := func(disable bool) ([]partition.BlockID, partition.Key, Stats) {
					p, err := partition.FromAssignment(h, dev, assign, k)
					if err != nil {
						t.Fatal(err)
					}
					cfg := Default()
					vt.mut(&cfg)
					cfg.DisableDeltaGain = disable
					e := New(p, cfg)
					st := e.Improve(blocks, rem, m)
					out := make([]partition.BlockID, h.NumNodes())
					for v := range out {
						out[v] = p.Block(hypergraph.NodeID(v))
					}
					if err := p.Validate(); err != nil {
						t.Fatalf("seed %d dev %s %s disable=%v: %v", seed, dev.Name, vt.name, disable, err)
					}
					return out, p.Key(cfg.Cost, rem, m), st
				}
				gotA, keyA, stA := run(false)
				gotB, keyB, stB := run(true)
				if keyA != keyB {
					t.Errorf("seed %d dev %s %s: key delta=%v recompute=%v", seed, dev.Name, vt.name, keyA, keyB)
				}
				if stA.MovesApplied != stB.MovesApplied || stA.Passes != stB.Passes {
					t.Errorf("seed %d dev %s %s: stats delta=(%d moves, %d passes) recompute=(%d, %d)",
						seed, dev.Name, vt.name, stA.MovesApplied, stA.Passes, stB.MovesApplied, stB.Passes)
				}
				for v := range gotA {
					if gotA[v] != gotB[v] {
						t.Fatalf("seed %d dev %s %s: node %d delta=%d recompute=%d",
							seed, dev.Name, vt.name, v, gotA[v], gotB[v])
					}
				}
			}
		}
	}
}

// TestDeltaBucketStateMatchesRecompute drives a pass move by move and
// checks, after every applied move, that each unlocked active cell's bucket
// gain equals a fresh recomputation in every direction, and that the delta
// accumulator returned to its all-zero resting state.
func TestDeltaBucketStateMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := randomCircuit(r)
	dev := device.Device{Name: "d", DatasheetCells: 14, Pins: 12, Fill: 1.0}
	const k = 3
	assign := make([]partition.BlockID, h.NumNodes())
	for v := range assign {
		assign[v] = partition.BlockID(r.Intn(k))
	}
	for _, pin := range []bool{false, true} {
		p, err := partition.FromAssignment(h, dev, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Default()
		cfg.PinGain = pin
		e := New(p, cfg)
		blocks := []partition.BlockID{0, 1, 2}
		e.prepare(blocks, 2, k)
		e.initPass()
		e.journal = e.journal[:0]
		scratch := make([]int32, 0, e.cfg.TieWidth)
		for move := 0; ; move++ {
			c, ok := e.selectBest(scratch)
			if !ok {
				break
			}
			e.applyMove(c)
			for v := 0; v < h.NumNodes(); v++ {
				if e.locked[v] {
					continue
				}
				b := p.Block(hypergraph.NodeID(v))
				fi := e.blkIdx[b]
				for ti := range blocks {
					if ti == fi {
						continue
					}
					got, in := e.buckets[e.dirIndex(fi, ti)].Gain(int32(v))
					want := e.cellGain(hypergraph.NodeID(v), b, blocks[ti])
					if !in || got != want {
						t.Fatalf("pin=%v move %d: cell %d dir %d→%d: bucket gain %d (present=%v), recomputed %d",
							pin, move, v, fi, ti, got, in, want)
					}
				}
			}
			for i, a := range e.accum {
				if a != 0 {
					t.Fatalf("pin=%v move %d: accum[%d] = %d, want all-zero between moves", pin, move, i, a)
				}
			}
		}
	}
}

// TestParallelInitPassDeterministic forces the parallel gain-fill path on a
// small fixture (threshold 0) and checks the result is identical to the
// serial path. Running under the -race leg of scripts/verify.sh, this also
// proves the worker pool is data-race free.
func TestParallelInitPassDeterministic(t *testing.T) {
	run := func(threshold int) ([]partition.BlockID, int) {
		oldT, oldW := parallelInitThreshold, parallelInitWorkers
		parallelInitThreshold = threshold
		parallelInitWorkers = 4 // real goroutines even when GOMAXPROCS is 1
		defer func() { parallelInitThreshold, parallelInitWorkers = oldT, oldW }()
		h, _ := clusters(t, 3, 8)
		dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
		p := scrambled(t, h, dev, 3)
		e := New(p, Default())
		e.Improve([]partition.BlockID{0, 1, 2}, 2, 3)
		out := make([]partition.BlockID, h.NumNodes())
		for v := range out {
			out[v] = p.Block(hypergraph.NodeID(v))
		}
		return out, p.Cut()
	}
	serialA, cutA := run(1 << 60) // always serial
	parB, cutB := run(0)          // always parallel
	if cutA != cutB {
		t.Fatalf("parallel initPass changed the cut: serial %d, parallel %d", cutA, cutB)
	}
	for v := range serialA {
		if serialA[v] != parB[v] {
			t.Fatalf("parallel initPass changed assignment of node %d", v)
		}
	}
}

// TestDirBoundMatchesFullScan is the differential proof for the
// per-direction selection-bound cache: with the cache on and off, identical
// seeds must walk bit-identical trajectories — the cache may only skip
// directions that would lose every comparison anyway.
func TestDirBoundMatchesFullScan(t *testing.T) {
	devices := []device.Device{
		{Name: "tight", DatasheetCells: 12, Pins: 10, Fill: 1.0},
		{Name: "roomy", DatasheetCells: 20, Pins: 24, Fill: 1.0},
	}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := randomCircuit(r)
		k := 2 + r.Intn(4)
		assign := make([]partition.BlockID, h.NumNodes())
		for v := range assign {
			assign[v] = partition.BlockID(r.Intn(k))
		}
		for _, dev := range devices {
			m := device.LowerBound(h, dev)
			rem := partition.BlockID(k - 1)
			blocks := make([]partition.BlockID, k)
			for i := range blocks {
				blocks[i] = partition.BlockID(i)
			}
			run := func(disable bool) ([]partition.BlockID, partition.Key, Stats) {
				old := disableDirBound
				disableDirBound = disable
				defer func() { disableDirBound = old }()
				p, err := partition.FromAssignment(h, dev, assign, k)
				if err != nil {
					t.Fatal(err)
				}
				cfg := Default()
				e := New(p, cfg)
				st := e.Improve(blocks, rem, m)
				out := make([]partition.BlockID, h.NumNodes())
				for v := range out {
					out[v] = p.Block(hypergraph.NodeID(v))
				}
				return out, p.Key(cfg.Cost, rem, m), st
			}
			gotA, keyA, stA := run(false)
			gotB, keyB, stB := run(true)
			if keyA != keyB {
				t.Errorf("seed %d dev %s: key cached=%v full=%v", seed, dev.Name, keyA, keyB)
			}
			if stA.MovesApplied != stB.MovesApplied || stA.Passes != stB.Passes {
				t.Errorf("seed %d dev %s: stats cached=(%d moves, %d passes) full=(%d, %d)",
					seed, dev.Name, stA.MovesApplied, stA.Passes, stB.MovesApplied, stB.Passes)
			}
			for v := range gotA {
				if gotA[v] != gotB[v] {
					t.Fatalf("seed %d dev %s: node %d cached=%d full=%d",
						seed, dev.Name, v, gotA[v], gotB[v])
				}
			}
		}
	}
}

// TestDeltaGainStatsReduceBucketOps documents the point of the kernel: on a
// non-trivial multi-block instance the delta path performs strictly fewer
// bucket mutations than wholesale recomputation.
func TestDeltaGainStatsReduceBucketOps(t *testing.T) {
	run := func(disable bool) Stats {
		h, _ := clusters(t, 4, 8)
		dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
		p := scrambled(t, h, dev, 4)
		cfg := Default()
		cfg.DisableDeltaGain = disable
		e := New(p, cfg)
		return e.Improve([]partition.BlockID{0, 1, 2, 3}, 3, 4)
	}
	delta, whole := run(false), run(true)
	if delta.MovesApplied != whole.MovesApplied {
		t.Fatalf("paths diverged: %d vs %d moves", delta.MovesApplied, whole.MovesApplied)
	}
	if delta.BucketOps >= whole.BucketOps {
		t.Errorf("delta path did not reduce bucket ops: %d vs %d", delta.BucketOps, whole.BucketOps)
	}
}
