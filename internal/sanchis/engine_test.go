package sanchis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

var testDev = device.Device{Name: "T", DatasheetCells: 12, Pins: 40, Fill: 1.0}

// clusters builds c densely connected clusters of n unit cells joined in a
// ring by single bridge nets, returning the graph and per-cluster node sets.
func clusters(t testing.TB, c, n int) (*hypergraph.Hypergraph, [][]hypergraph.NodeID) {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	return b.MustBuild(), sets
}

// scrambled assigns the cluster graph to k blocks round-robin (worst case).
func scrambled(t testing.TB, h *hypergraph.Hypergraph, dev device.Device, k int) *partition.Partition {
	t.Helper()
	p := partition.New(h, dev)
	for i := 1; i < k; i++ {
		p.AddBlock()
	}
	for v := 0; v < h.NumNodes(); v++ {
		p.Move(hypergraph.NodeID(v), partition.BlockID(v%k))
	}
	return p
}

func TestGain1MatchesBruteForce(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 6 + r.Intn(25)
		for i := 0; i < n; i++ {
			b.AddInterior("v", 1)
		}
		for e := 0; e < n+r.Intn(2*n); e++ {
			d := 2 + r.Intn(4)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		p := partition.New(h, testDev)
		k := 2 + r.Intn(4)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for v := 0; v < n; v++ {
			p.Move(hypergraph.NodeID(v), partition.BlockID(r.Intn(k)))
		}
		e := New(p, Default())
		for trial := 0; trial < 25; trial++ {
			v := hypergraph.NodeID(r.Intn(n))
			from := p.Block(v)
			to := partition.BlockID(r.Intn(k))
			if to == from {
				continue
			}
			g := e.gain1(v, from, to)
			before := p.Cut()
			p.Move(v, to)
			after := p.Cut()
			p.Move(v, from)
			if g != before-after {
				t.Logf("seed %d: gain1(%d,%d->%d)=%d, Δcut=%d", s, v, from, to, g, before-after)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bindDirs wires the direction-dependent engine state (active blocks, block
// index, locked-pin counters) that prepare would normally build, for
// white-box tests that call gain2/gainLevels without running a pass.
func bindDirs(e *Engine, blocks ...partition.BlockID) {
	e.blocks = blocks
	e.blkIdx = make([]int, e.p.NumBlocks())
	for i := range e.blkIdx {
		e.blkIdx[i] = -1
	}
	for i, b := range blocks {
		e.blkIdx[b] = i
	}
	e.netLock = make([]int32, e.h.NumNets()*len(blocks))
}

// lockCell marks v locked in its current block, maintaining the netLock
// counters the way applyMove does.
func lockCell(e *Engine, v hypergraph.NodeID) {
	e.locked[v] = true
	e.lockNets(v, e.blkIdx[e.p.Block(v)])
}

func TestGain2Handcrafted(t *testing.T) {
	// Net {a, b, c}: a, b in F, c in T, nothing locked.
	// Moving a (F→T): level-1 gain 0 (pF=2). Level-2: +1 for the two
	// unlocked F pins (binding number 2), -1 for the single unlocked T pin
	// (binding number 1) => net 0, the classical Krishnamurthy balance.
	var bld hypergraph.Builder
	a := bld.AddInterior("a", 1)
	b := bld.AddInterior("b", 1)
	c := bld.AddInterior("c", 1)
	bld.AddNet("n", a, b, c)
	h := bld.MustBuild()
	p := partition.New(h, testDev)
	bT := p.AddBlock()
	p.Move(c, bT)
	e := New(p, Default())
	bindDirs(e, 0, bT)
	if g := e.gain1(a, 0, bT); g != 0 {
		t.Errorf("gain1 = %d, want 0", g)
	}
	if g := e.gain2(a, 0, bT); g != 0 {
		t.Errorf("gain2 = %d, want 0 (+1 F-side, -1 T-side)", g)
	}
	// Lock b: the F side becomes unusable, positive term vanishes. The T
	// side has one unlocked pin (c), so the negative term applies: -1.
	lockCell(e, b)
	if g := e.gain2(a, 0, bT); g != -1 {
		t.Errorf("gain2 with locked partner = %d, want -1", g)
	}
	// Lock c instead: negative term vanishes (locked T pin), positive
	// term counts again.
	e.locked[b] = false
	clear(e.netLock)
	lockCell(e, c)
	if g := e.gain2(a, 0, bT); g != 1 {
		t.Errorf("gain2 with locked T pin = %d, want 1", g)
	}
}

func TestGain2IgnoresThirdBlockNets(t *testing.T) {
	// Net spanning a third block never contributes to gain2 of an F→T move.
	var bld hypergraph.Builder
	a := bld.AddInterior("a", 1)
	b := bld.AddInterior("b", 1)
	c := bld.AddInterior("c", 1)
	bld.AddNet("n", a, b, c)
	h := bld.MustBuild()
	p := partition.New(h, testDev)
	bT := p.AddBlock()
	bX := p.AddBlock()
	p.Move(b, bX) // pin in third block
	p.Move(c, bT)
	e := New(p, Default())
	bindDirs(e, 0, bT, bX)
	if g := e.gain2(a, 0, bT); g != 0 {
		t.Errorf("gain2 = %d, want 0 for net touching a third block", g)
	}
}

func TestTwoBlockImproveFindsBridgeCut(t *testing.T) {
	// With move windows disabled, the engine is classical FM and must find
	// the 2-net bridge cut of the two-cluster ring from a scrambled start.
	h, sets := clusters(t, 2, 8)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
	p := scrambled(t, h, dev, 2) // round-robin: terrible cut
	cfg := Default()
	cfg.DisableWindows = true
	e := New(p, cfg)
	st := e.Improve([]partition.BlockID{0, 1}, 1, 2)
	if !st.Improved {
		t.Fatal("Improve reported no improvement from a scrambled start")
	}
	// Two bridge nets join the clusters in a ring of 2; optimal cut = 2.
	if p.Cut() > 3 {
		t.Errorf("cut = %d after improvement, want near 2", p.Cut())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each block should be dominated by one cluster.
	same := 0
	for _, v := range sets[0] {
		if p.Block(v) == p.Block(sets[0][0]) {
			same++
		}
	}
	if same < 7 {
		t.Errorf("cluster 0 split across blocks: %d/8 together", same)
	}
}

func TestTwoBlockWindowKeepsBlockSaturated(t *testing.T) {
	// With the paper's windows, a 2-block pass must keep the non-remainder
	// block within [0.95, 1.05]·S_MAX (it enters saturated from the seed
	// constructor), so its size may wiggle but not collapse.
	h, _ := clusters(t, 2, 10) // 20 unit cells
	dev := device.Device{Name: "d", DatasheetCells: 12, Pins: 40, Fill: 1.0}
	p := partition.New(h, dev)
	rem := p.AddBlock()
	// Saturate block 0 with cluster 0 plus two cells of cluster 1.
	for v := 12; v < 20; v++ {
		p.Move(hypergraph.NodeID(v), rem)
	}
	if p.Size(0) != 12 {
		t.Fatalf("setup: block 0 size %d, want 12", p.Size(0))
	}
	e := New(p, Default())
	e.Improve([]partition.BlockID{0, rem}, rem, 2)
	smax := float64(dev.SMax())
	lo, hi := int(0.95*smax), int(1.05*smax)
	if p.Size(0) < lo || p.Size(0) > hi+1 {
		t.Errorf("block 0 size %d escaped window [%d,%d]", p.Size(0), lo, hi)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImproveNeverWorsensKey(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 8 + r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(9) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 2 + n/2, Pins: 5 + r.Intn(20), Fill: 1.0}
		p := partition.New(h, dev)
		k := 2 + r.Intn(3)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for v := 0; v < n; v++ {
			p.Move(hypergraph.NodeID(v), partition.BlockID(r.Intn(k)))
		}
		cfg := Default()
		cfg.MaxPasses = 3
		e := New(p, cfg)
		m := device.LowerBound(h, dev)
		rem := partition.BlockID(k - 1)
		cp := cfg.Cost
		before := p.Key(cp, rem, m)
		blocks := make([]partition.BlockID, k)
		for i := range blocks {
			blocks[i] = partition.BlockID(i)
		}
		e.Improve(blocks, rem, m)
		after := p.Key(cp, rem, m)
		if before.Better(after) {
			t.Logf("seed %d: key worsened %v -> %v", s, before, after)
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMoveRegionFigure3TwoBlockStricter(t *testing.T) {
	// Figure 3 / §3.5: in a 2-block pass the non-remainder block may not
	// shrink below 0.95·S_MAX, while in a multi-block pass the bound is
	// 0.3·S_MAX. Upper bound is 1.05·S_MAX for non-remainder targets while
	// k <= M, and there is no upper bound for the remainder.
	h, _ := clusters(t, 3, 4)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0} // S_MAX = 10
	p := scrambled(t, h, dev, 3)
	e := New(p, Default())
	e.remainder = 2
	e.m = 10 // k(3) <= m: overflow allowed up to 1.05
	e.allowOver = true

	// 2-block context.
	e.blocks = []partition.BlockID{0, 2}
	// Sizes: block 0 has 4 cells (12 total /3). Moving 1 cell out of block
	// 0 leaves 3 < 0.95*10: inadmissible.
	if e.sizeAdmissible(1, 0, 2) {
		t.Error("2-block: move from non-remainder below 0.95·S_MAX should be gated")
	}
	// Multi-block context: bound drops to 0.3·S_MAX = 3: admissible.
	e.blocks = []partition.BlockID{0, 1, 2}
	if !e.sizeAdmissible(1, 0, 2) {
		t.Error("multi-block: same move should be admissible (bound 0.3)")
	}
	// Upper bound: moving into block 1 (size 4) is fine; moving a size-7
	// cell would exceed 1.05*10 = 10.5.
	if !e.sizeAdmissible(6, 2, 1) { // 4+6=10 <= 10.5
		t.Error("move to 10 <= 1.05·S_MAX should pass while overflow allowed")
	}
	if e.sizeAdmissible(7, 2, 1) { // 4+7=11 > 10.5
		t.Error("move to 11 > 1.05·S_MAX should be gated")
	}
	// Once M is reached, the upper bound is strict S_MAX.
	e.allowOver = false
	if e.sizeAdmissible(7, 2, 1) || !e.sizeAdmissible(6, 2, 1) {
		t.Error("strict S_MAX bound wrong when k > M")
	}
	// The remainder has no upper bound: a move that satisfies the source
	// window is admissible no matter how big the remainder would become.
	// (A size-100 move from block 1 would fail the *source* lower bound,
	// so grow block 1 far beyond the remainder first.)
	for _, v := range p.NodesIn(0) {
		p.Move(v, 1)
	}
	// Block 1 now has 8 cells; moving 5 leaves 3 >= 0.3·10.
	if !e.sizeAdmissible(5, 1, 2) {
		t.Error("moves to the remainder must never be size-gated above")
	}
	if !e.sizeAdmissible(5, 1, 0) {
		t.Error("move into an empty non-remainder block should pass the upper bound")
	}
	// Windows disabled: everything is admissible.
	e.cfg.DisableWindows = true
	if !e.sizeAdmissible(100, 0, 1) {
		t.Error("DisableWindows should admit everything")
	}
}

func TestImproveAllBlocksReducesCut(t *testing.T) {
	h, _ := clusters(t, 4, 6)
	dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 40, Fill: 1.0}
	p := scrambled(t, h, dev, 4)
	before := p.Cut()
	e := New(p, Default())
	st := e.Improve([]partition.BlockID{0, 1, 2, 3}, 3, 4)
	if p.Cut() >= before {
		t.Errorf("cut %d -> %d: no reduction", before, p.Cut())
	}
	if st.MovesApplied == 0 || st.Passes == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImproveDeterministic(t *testing.T) {
	run := func() ([]partition.BlockID, int) {
		h, _ := clusters(t, 3, 6)
		dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 40, Fill: 1.0}
		p := scrambled(t, h, dev, 3)
		e := New(p, Default())
		e.Improve([]partition.BlockID{0, 1, 2}, 2, 3)
		out := make([]partition.BlockID, h.NumNodes())
		for v := range out {
			out[v] = p.Block(hypergraph.NodeID(v))
		}
		return out, p.Cut()
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("nondeterministic cut: %d vs %d", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic assignment at node %d", i)
		}
	}
}

func TestSolutionStackRestarts(t *testing.T) {
	h, _ := clusters(t, 4, 6)
	dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 6, Fill: 1.0}
	p := scrambled(t, h, dev, 4)
	cfg := Default()
	e := New(p, cfg)
	st := e.Improve([]partition.BlockID{0, 1, 2, 3}, 3, 4)
	if st.Restarts == 0 {
		t.Error("expected stack restarts with StackDepth=4 on a tight instance")
	}
	// Disabled stacks: no restarts.
	p2 := scrambled(t, h, dev, 4)
	cfg2 := Default()
	cfg2.StackDepth = -1
	e2 := New(p2, cfg2)
	st2 := e2.Improve([]partition.BlockID{0, 1, 2, 3}, 3, 4)
	if st2.Restarts != 0 {
		t.Errorf("StackDepth=-1 still restarted %d times", st2.Restarts)
	}
}

func TestImproveSubsetLeavesOthersUntouched(t *testing.T) {
	h, _ := clusters(t, 3, 6)
	dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 40, Fill: 1.0}
	p := scrambled(t, h, dev, 3)
	frozen := map[hypergraph.NodeID]partition.BlockID{}
	for v := 0; v < h.NumNodes(); v++ {
		if p.Block(hypergraph.NodeID(v)) == 0 {
			frozen[hypergraph.NodeID(v)] = 0
		}
	}
	e := New(p, Default())
	e.Improve([]partition.BlockID{1, 2}, 2, 3)
	for v, b := range frozen {
		if p.Block(v) != b {
			t.Fatalf("node %d in inactive block moved", v)
		}
	}
}

func TestImproveSingleBlockNoop(t *testing.T) {
	h, _ := clusters(t, 2, 4)
	p := partition.New(h, testDev)
	e := New(p, Default())
	st := e.Improve([]partition.BlockID{0}, 0, 1)
	if st.Passes != 0 || st.MovesApplied != 0 {
		t.Errorf("single-block Improve did work: %+v", st)
	}
}

func TestInsertRankedBoundedAndSorted(t *testing.T) {
	less := func(a, b stackEntry) bool { return a.dist < b.dist }
	var list []stackEntry
	for _, d := range []float64{5, 3, 8, 1, 9, 2} {
		list = insertRanked(list, stackEntry{dist: d, key: partition.Key{D: d}}, 4, less)
	}
	if len(list) != 4 {
		t.Fatalf("len = %d, want 4", len(list))
	}
	want := []float64{1, 2, 3, 5}
	for i, e := range list {
		if e.dist != want[i] {
			t.Errorf("list[%d].dist = %v, want %v", i, e.dist, want[i])
		}
	}
	// Duplicate keys are not inserted twice.
	n := len(list)
	list = insertRanked(list, stackEntry{dist: 2, key: partition.Key{D: 2}}, 4, less)
	if len(list) != n {
		t.Error("duplicate entry inserted")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Windows != DefaultWindows() || c.StackDepth != 4 || c.MaxPasses != 10 || c.TieWidth != 8 {
		t.Errorf("normalize defaults wrong: %+v", c)
	}
	if c.Cost != partition.DefaultCost() {
		t.Errorf("cost default wrong: %+v", c.Cost)
	}
	c2 := Config{StackDepth: -1}.normalize()
	if c2.StackDepth != 0 {
		t.Errorf("StackDepth -1 should normalize to 0, got %d", c2.StackDepth)
	}
}

func BenchmarkImproveTwoBlock400(b *testing.B) {
	var bld hypergraph.Builder
	r := rand.New(rand.NewSource(5))
	const n = 400
	for i := 0; i < n; i++ {
		bld.AddInterior("v", 1)
	}
	for e := 0; e < 700; e++ {
		d := 2 + r.Intn(3)
		pins := make([]hypergraph.NodeID, d)
		for i := range pins {
			pins[i] = hypergraph.NodeID(r.Intn(n))
		}
		bld.AddNet("e", pins...)
	}
	h := bld.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 220, Pins: 300, Fill: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := partition.New(h, dev)
		p.AddBlock()
		for v := 0; v < n; v++ {
			p.Move(hypergraph.NodeID(v), partition.BlockID(v%2))
		}
		e := New(p, Default())
		b.StartTimer()
		e.Improve([]partition.BlockID{0, 1}, 1, 2)
	}
}
