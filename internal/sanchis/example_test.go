package sanchis_test

import (
	"context"
	"fmt"
	"log"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

// ExampleEngine_ImproveCtx untangles two scrambled clusters with one
// guided improvement call. The context bounds the work: cancel it (or let
// a deadline pass) and the engine stops at the next polling point,
// restoring the best solution found so far.
func ExampleEngine_ImproveCtx() {
	// Two 6-cell chains, one bridge net between them.
	var b hypergraph.Builder
	var left, right []hypergraph.NodeID
	for i := 0; i < 6; i++ {
		left = append(left, b.AddInterior(fmt.Sprintf("l%d", i), 1))
		right = append(right, b.AddInterior(fmt.Sprintf("r%d", i), 1))
	}
	for i := 0; i+1 < 6; i++ {
		b.AddNet("l", left[i], left[i+1])
		b.AddNet("r", right[i], right[i+1])
	}
	b.AddNet("bridge", left[5], right[0])
	h := b.MustBuild()

	// Scramble: alternate cell pairs across two blocks (worst case for the
	// cut — every chain net is cut).
	dev := device.Device{Name: "toy", DatasheetCells: 8, Pins: 16, Fill: 1.0}
	p := partition.New(h, dev)
	p.AddBlock()
	for v := 0; v < h.NumNodes(); v++ {
		p.Move(hypergraph.NodeID(v), partition.BlockID((v/2)%2))
	}
	before := p.Cut()

	// The §3.5 move windows target near-full blocks; this toy instance is
	// half-empty, so switch them off to let the pass run unhindered.
	cfg := sanchis.Default()
	cfg.DisableWindows = true
	eng := sanchis.New(p, cfg)
	st, err := eng.ImproveCtx(context.Background(), []partition.BlockID{0, 1}, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("improved=%v cut %d -> %d\n", st.Improved, before, p.Cut())
	// Output:
	// improved=true cut 11 -> 1
}
