package sanchis

// Tests for the paper's §5 future-work extensions: pin gains and early
// pass termination.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// Property: gainPin equals the brute-force change in total terminal count
// (T_SUM before − after) for arbitrary moves on random partitions.
func TestQuickPinGainMatchesBruteForce(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 6 + r.Intn(25)
		for i := 0; i < n; i++ {
			if r.Intn(8) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(2*n); e++ {
			d := 2 + r.Intn(4)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		p := partition.New(h, testDev)
		k := 2 + r.Intn(4)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for v := 0; v < n; v++ {
			p.Move(hypergraph.NodeID(v), partition.BlockID(r.Intn(k)))
		}
		cfg := Default()
		cfg.PinGain = true
		e := New(p, cfg)
		for trial := 0; trial < 25; trial++ {
			v := hypergraph.NodeID(r.Intn(n))
			from := p.Block(v)
			to := partition.BlockID(r.Intn(k))
			if to == from {
				continue
			}
			g := e.gainPin(v, from, to)
			before := p.TerminalSum()
			p.Move(v, to)
			after := p.TerminalSum()
			p.Move(v, from)
			if g != before-after {
				t.Logf("seed %d: gainPin(%d,%d->%d)=%d, ΔT_SUM=%d", s, v, from, to, g, before-after)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPinGainSeesZeroCutGainMoves(t *testing.T) {
	// §3's motivating observation: "a net with zero gain changes the
	// number of I/Os of block to/from which it is moved". Build exactly
	// that: net {a, b, c} with a,b in F and c in X (a third block). Moving
	// a from F to X: cut gain 0 (the net stays cut), but block X gains no
	// new net while F keeps it, so pins are unchanged... take instead net
	// {a, c}: a in F, c in X, moving a to T (empty block): cut gain 0
	// (stays cut), pin gain 0 (F loses, T gains). The asymmetric case is
	// net {a, b, c}: a,b in F, c in X. Moving a to X: cut gain 0, pin
	// gain 0 (F keeps the net via b, X already pays). Now net {a, c, d}
	// with a alone in F, c,d in X: moving a to X uncuts for F and X
	// already pays: pin gain +2? No: the net becomes uncut (span 1), so
	// BOTH F and X drop their pin: that's the wasCut&&!isCut case and cut
	// gain is +1 too. The true divergence: a in F; net {a, c} with c in
	// X; moving a to T != X: span stays 2 ({X,T} after), cut gain 0, but
	// F frees a pin and T pays one: pin gain 0. The remaining divergence
	// is nets with pins in >= 3 blocks:
	var bld hypergraph.Builder
	a := bld.AddInterior("a", 1)
	c := bld.AddInterior("c", 1)
	d := bld.AddInterior("d", 1)
	bld.AddNet("n", a, c, d)
	h := bld.MustBuild()
	p := partition.New(h, testDev)
	bX := p.AddBlock()
	bY := p.AddBlock()
	p.Move(c, bX)
	p.Move(d, bY) // net spans {F, X, Y}
	cfg := Default()
	cfg.PinGain = true
	e := New(p, cfg)
	// Moving a (F -> X): net still spans {X, Y}; F frees its pin, X pays
	// nothing new. Cut gain: 0 (net remains cut). Pin gain: +1.
	if g := e.gain1(a, 0, bX); g != 0 {
		t.Errorf("cut gain = %d, want 0", g)
	}
	if g := e.gainPin(a, 0, bX); g != 1 {
		t.Errorf("pin gain = %d, want +1", g)
	}
}

func TestPinGainImproveValid(t *testing.T) {
	h, _ := clusters(t, 3, 8)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 30, Fill: 1.0}
	p := scrambled(t, h, dev, 3)
	cfg := Default()
	cfg.PinGain = true
	e := New(p, cfg)
	before := p.TerminalSum()
	st := e.Improve([]partition.BlockID{0, 1, 2}, 2, 3)
	if p.TerminalSum() > before {
		t.Errorf("pin-gain improvement raised T_SUM %d -> %d", before, p.TerminalSum())
	}
	if st.Passes == 0 {
		t.Error("no passes ran")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStopBoundsPassLength(t *testing.T) {
	h, _ := clusters(t, 2, 20)
	dev := device.Device{Name: "d", DatasheetCells: 25, Pins: 60, Fill: 1.0}

	run := func(earlyStop int) int {
		p := scrambled(t, h, dev, 2)
		cfg := Default()
		cfg.MaxPasses = 1
		cfg.StackDepth = -1
		cfg.EarlyStop = earlyStop
		cfg.DisableWindows = true
		e := New(p, cfg)
		st := e.Improve([]partition.BlockID{0, 1}, 1, 2)
		return st.MovesApplied
	}
	full := run(0)
	short := run(3)
	if short > full {
		t.Errorf("early stop applied more moves (%d) than the full pass (%d)", short, full)
	}
	// With a full pass every cell moves once (40 cells); with a tight
	// early-stop window the pass must end well before that.
	if full < 30 {
		t.Fatalf("full pass applied only %d moves; test assumption broken", full)
	}
	if short >= full {
		t.Errorf("early stop did not shorten the pass: %d vs %d", short, full)
	}
}

func TestEarlyStopPreservesQualityOnEasyInstance(t *testing.T) {
	h, _ := clusters(t, 2, 8)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
	run := func(earlyStop int) int {
		p := scrambled(t, h, dev, 2)
		cfg := Default()
		cfg.DisableWindows = true
		cfg.EarlyStop = earlyStop
		e := New(p, cfg)
		e.Improve([]partition.BlockID{0, 1}, 1, 2)
		return p.Cut()
	}
	full, short := run(0), run(8)
	if short > full+2 {
		t.Errorf("early stop degraded cut badly: %d vs %d", short, full)
	}
}
