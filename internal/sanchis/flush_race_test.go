package sanchis

// Determinism pin for the sharded parallel gain flush: with the threshold
// forced to zero every applied move takes the deltaUpdateSharded path, and
// the resulting trajectory must be bit-identical to the fused serial flush
// and to the wholesale-recompute reference at every worker count. Run under
// -race (scripts/verify.sh does) this also proves the shards never write a
// shared cell.

import (
	"math/rand"
	"runtime"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

type flushRun struct {
	assign []partition.BlockID
	key    partition.Key
	st     Stats
}

func runFlushVariant(t *testing.T, h *hypergraph.Hypergraph, dev device.Device,
	assign []partition.BlockID, k int, threshold, workers int, disableDelta bool) flushRun {
	t.Helper()
	oldT, oldW := parallelFlushThreshold, parallelFlushWorkers
	parallelFlushThreshold = threshold
	parallelFlushWorkers = workers
	defer func() { parallelFlushThreshold, parallelFlushWorkers = oldT, oldW }()

	p, err := partition.FromAssignment(h, dev, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	m := device.LowerBound(h, dev)
	rem := partition.BlockID(k - 1)
	blocks := make([]partition.BlockID, k)
	for i := range blocks {
		blocks[i] = partition.BlockID(i)
	}
	cfg := Default()
	cfg.DisableDeltaGain = disableDelta
	e := New(p, cfg)
	st := e.Improve(blocks, rem, m)
	out := make([]partition.BlockID, h.NumNodes())
	for v := range out {
		out[v] = p.Block(hypergraph.NodeID(v))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return flushRun{assign: out, key: p.Key(cfg.Cost, rem, m), st: st}
}

func TestShardedFlushDeterministicAcrossWorkers(t *testing.T) {
	dev := device.Device{Name: "d", DatasheetCells: 16, Pins: 14, Fill: 1.0}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := randomCircuit(r)
		k := 2 + r.Intn(4)
		assign := make([]partition.BlockID, h.NumNodes())
		for v := range assign {
			assign[v] = partition.BlockID(r.Intn(k))
		}

		// Reference trajectories: wholesale recompute and fused serial flush.
		ref := runFlushVariant(t, h, dev, assign, k, int(^uint(0)>>1), 0, true)
		serial := runFlushVariant(t, h, dev, assign, k, int(^uint(0)>>1), 0, false)

		check := func(name string, got flushRun) {
			t.Helper()
			if got.key != ref.key {
				t.Errorf("seed %d %s: key %v, reference %v", seed, name, got.key, ref.key)
			}
			if got.st.MovesApplied != ref.st.MovesApplied || got.st.Passes != ref.st.Passes {
				t.Errorf("seed %d %s: (%d moves, %d passes), reference (%d, %d)",
					seed, name, got.st.MovesApplied, got.st.Passes, ref.st.MovesApplied, ref.st.Passes)
			}
			for v := range got.assign {
				if got.assign[v] != ref.assign[v] {
					t.Fatalf("seed %d %s: node %d in block %d, reference %d",
						seed, name, v, got.assign[v], ref.assign[v])
				}
			}
		}
		check("serial-delta", serial)
		// Sharded path at several worker counts; threshold 0 forces every
		// flush through the shards regardless of move size.
		for _, workers := range []int{2, 4, 7} {
			check("sharded-"+string(rune('0'+workers)), runFlushVariant(t, h, dev, assign, k, 0, workers, false))
		}
	}
}

// TestShardedFlushAcrossGOMAXPROCS repeats the pin at GOMAXPROCS 1 and 4:
// the shard→worker assignment is dynamic, so this exercises genuinely
// different interleavings while the accumulated deltas must stay identical.
func TestShardedFlushAcrossGOMAXPROCS(t *testing.T) {
	dev := device.Device{Name: "d", DatasheetCells: 14, Pins: 12, Fill: 1.0}
	r := rand.New(rand.NewSource(99))
	h := randomCircuit(r)
	k := 3
	assign := make([]partition.BlockID, h.NumNodes())
	for v := range assign {
		assign[v] = partition.BlockID(r.Intn(k))
	}
	ref := runFlushVariant(t, h, dev, assign, k, int(^uint(0)>>1), 0, true)
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := runFlushVariant(t, h, dev, assign, k, 0, 4, false)
		runtime.GOMAXPROCS(old)
		if got.key != ref.key || got.st.MovesApplied != ref.st.MovesApplied {
			t.Errorf("GOMAXPROCS %d: key %v moves %d, reference %v / %d",
				procs, got.key, got.st.MovesApplied, ref.key, ref.st.MovesApplied)
		}
		for v := range got.assign {
			if got.assign[v] != ref.assign[v] {
				t.Fatalf("GOMAXPROCS %d: node %d in block %d, reference %d",
					procs, v, got.assign[v], ref.assign[v])
			}
		}
	}
}
