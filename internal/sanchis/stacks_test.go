package sanchis

// Focused tests for the §3.6 solution-stack machinery and engine reuse.

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestStacksOfferClassification(t *testing.T) {
	h, _ := clusters(t, 3, 4)
	tight := device.Device{Name: "t", DatasheetCells: 5, Pins: 2, Fill: 1.0}
	p := scrambled(t, h, tight, 3)
	s := &stacks{depth: 4, cost: partition.DefaultCost()}

	// All three blocks violate terminals: infeasible solution goes to the
	// infeasible stack.
	key := p.Key(partition.DefaultCost(), 2, 3)
	s.offer(p.NumBlocks(), key, 1)
	if len(s.infeas) != 1 || len(s.semi) != 0 {
		t.Fatalf("infeasible solution misrouted: semi=%d infeas=%d", len(s.semi), len(s.infeas))
	}

	// Empty two blocks so only one violates: semi-feasible stack.
	for v := 0; v < h.NumNodes(); v++ {
		p.Move(hypergraph.NodeID(v), 0)
	}
	key = p.Key(partition.DefaultCost(), 0, 3)
	s.offer(p.NumBlocks(), key, 2)
	if len(s.semi) != 1 {
		t.Fatalf("semi-feasible solution misrouted: semi=%d infeas=%d", len(s.semi), len(s.infeas))
	}
}

func TestStacksDepthZeroDropsEverything(t *testing.T) {
	h, _ := clusters(t, 2, 4)
	p := scrambled(t, h, testDev, 2)
	s := &stacks{depth: 0}
	s.offer(p.NumBlocks(), p.Key(partition.DefaultCost(), 1, 2), 1)
	if len(s.semi)+len(s.infeas) != 0 {
		t.Error("depth-0 stack accepted an entry")
	}
}

func TestMaterializeRestoresExactPrefixes(t *testing.T) {
	// Build a partition, apply a known journal, and check that
	// materialize snapshots the exact intermediate assignments.
	h, _ := clusters(t, 2, 4)
	p := scrambled(t, h, testDev, 2)
	journal := []moveRec{
		{v: 0, from: p.Block(0), to: 1 - p.Block(0)},
		{v: 1, from: p.Block(1), to: 1 - p.Block(1)},
		{v: 2, from: p.Block(2), to: 1 - p.Block(2)},
	}
	// Apply the journal.
	for _, m := range journal {
		p.Move(m.v, m.to)
	}
	wantAfter2 := p.Block(2) // will be undone to prefix 2 state
	s := &stacks{depth: 2, cost: partition.DefaultCost()}
	s.semi = []stackEntry{
		{key: partition.Key{F: 1}, prefixLen: 1},
		{key: partition.Key{F: 0}, prefixLen: 3},
	}
	s.materialize(p, journal, p.Snapshot)
	for _, ent := range s.semi {
		if !ent.hasSnap {
			t.Fatal("entry missing snapshot")
		}
	}
	// Prefix-1 snapshot: only journal[0] applied.
	snap1 := s.semi[0].snap
	if snap1.Assign(0) != journal[0].to {
		t.Error("prefix-1 snapshot missing move 0")
	}
	if snap1.Assign(1) != journal[1].from {
		t.Error("prefix-1 snapshot includes move 1")
	}
	// Full-state restoration: the partition must be back at the fully
	// applied journal.
	if p.Block(2) != wantAfter2 {
		t.Error("materialize did not restore the fully-applied state")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineReuseAcrossImproveCalls(t *testing.T) {
	h, _ := clusters(t, 3, 6)
	dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 40, Fill: 1.0}
	p := scrambled(t, h, dev, 3)
	e := New(p, Default())
	// Call with different block subsets in sequence; state must not leak.
	e.Improve([]partition.BlockID{0, 1}, 1, 3)
	e.Improve([]partition.BlockID{1, 2}, 2, 3)
	e.Improve([]partition.BlockID{0, 1, 2}, 2, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCutObjectiveKey(t *testing.T) {
	h, _ := clusters(t, 2, 4)
	p := scrambled(t, h, testDev, 2)
	cfg := Default()
	cfg.CutObjective = true
	e := New(p, cfg)
	e.blocks = []partition.BlockID{0, 1}
	e.remainder = 1
	e.m = 2
	k := e.key()
	if int(k.D) != p.Cut() {
		t.Errorf("cut-objective key D = %v, want cut %d", k.D, p.Cut())
	}
	if k.TSum != 0 || k.DE != 0 {
		t.Error("cut-objective key must not use TSum/DE")
	}
}

func TestImproveEmptyBlockSet(t *testing.T) {
	h, _ := clusters(t, 2, 4)
	p := partition.New(h, testDev)
	e := New(p, Default())
	st := e.Improve(nil, 0, 1)
	if st.Passes != 0 {
		t.Error("nil block set ran passes")
	}
}
