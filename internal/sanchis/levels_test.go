package sanchis

// Tests for the generalized Krishnamurthy level gains (§3.7 / [8]).

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestGainLevelsMatchesGain2AtLevel2(t *testing.T) {
	h, _ := clusters(t, 2, 8)
	p := scrambled(t, h, testDev, 2)
	e := New(p, Default())
	bindDirs(e, 0, 1)
	for v := 0; v < h.NumNodes(); v++ {
		id := hypergraph.NodeID(v)
		from := p.Block(id)
		lv := e.gainLevels(id, from, 1-from, 3, nil)
		g2 := e.gain2(id, from, 1-from)
		if lv[0] != g2 {
			t.Fatalf("node %d: gainLevels[0]=%d, gain2=%d", v, lv[0], g2)
		}
	}
}

func TestGainLevelsDepth(t *testing.T) {
	// Net {a, b, c, d}: a,b,c in F, d in T. Moving a: λ2 = −1 (the single
	// unlocked T pin), λ3 = +1 (three unlocked F pins), λ4 = 0.
	var b hypergraph.Builder
	a := b.AddInterior("a", 1)
	c := b.AddInterior("b", 1)
	d := b.AddInterior("c", 1)
	x := b.AddInterior("d", 1)
	b.AddNet("n", a, c, d, x)
	h := b.MustBuild()
	_ = c
	_ = d
	dev := device.Device{Name: "t", DatasheetCells: 12, Pins: 40, Fill: 1.0}
	p := partition.New(h, dev)
	blk := p.AddBlock()
	p.Move(x, blk)
	e := New(p, Default())
	bindDirs(e, 0, blk)
	lv := e.gainLevels(a, 0, blk, 4, nil)
	if lv[0] != -1 || lv[1] != 1 || lv[2] != 0 {
		t.Errorf("gainLevels = %v, want [-1 1 0]", lv)
	}
}

func TestDeepLevelsImproveRuns(t *testing.T) {
	h, _ := clusters(t, 3, 8)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
	p := scrambled(t, h, dev, 3)
	cfg := Default()
	cfg.GainLevels = 4
	e := New(p, cfg)
	st := e.Improve([]partition.BlockID{0, 1, 2}, 2, 3)
	if st.Passes == 0 {
		t.Error("no passes")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeepLevelsMatchLevel2Quality(t *testing.T) {
	// §3.7's conclusion: higher-level gains do not move solution quality
	// much. Verify levels 2 and 4 land within one cut of each other on the
	// cluster instance.
	run := func(levels int) int {
		h, _ := clusters(t, 4, 8)
		dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 40, Fill: 1.0}
		p := scrambled(t, h, dev, 4)
		cfg := Default()
		cfg.GainLevels = levels
		e := New(p, cfg)
		e.Improve([]partition.BlockID{0, 1, 2, 3}, 3, 4)
		return p.Cut()
	}
	c2, c4 := run(0), run(4)
	diff := c2 - c4
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Errorf("level depth changed cut drastically: L2=%d L4=%d", c2, c4)
	}
}
