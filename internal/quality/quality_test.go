package quality

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func build(t *testing.T) *partition.Partition {
	t.Helper()
	var b hypergraph.Builder
	var cells []hypergraph.NodeID
	for i := 0; i < 8; i++ {
		cells = append(cells, b.AddInterior("v", 1))
	}
	for i := 0; i+1 < 8; i++ {
		b.AddNet("e", cells[i], cells[i+1])
	}
	p1 := b.AddPad("p1")
	p2 := b.AddPad("p2")
	b.AddNet("pn1", p1, cells[0])
	b.AddNet("pn2", p2, cells[7])
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 5, Pins: 6, Fill: 1.0}
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	for i := 4; i < 8; i++ {
		p.Move(cells[i], b1)
	}
	p.Move(p2, b1)
	return p
}

func TestAnalyzeBasics(t *testing.T) {
	p := build(t)
	r := Analyze(p, 2)
	if r.K != 2 {
		t.Fatalf("K = %d, want 2", r.K)
	}
	if !r.Feasible {
		t.Error("expected feasible")
	}
	if r.Cut != 1 {
		t.Errorf("cut = %d, want 1 (the chain bridge)", r.Cut)
	}
	// Block 0: 4 cells of 5 => 80%; block 1: 4 of 5 => 80%.
	if r.AvgFill != 0.8 || r.MinFill != 0.8 || r.MaxFill != 0.8 {
		t.Errorf("fill stats wrong: %+v", r)
	}
	// Pads: one per block.
	if r.MinPads != 1 || r.MaxPads != 1 {
		t.Errorf("pad spread wrong: %d..%d", r.MinPads, r.MaxPads)
	}
	if len(r.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(r.Blocks))
	}
	// T per block: 1 cut + 1 pad = 2; util 2/6.
	for _, b := range r.Blocks {
		if b.Terminals != 2 {
			t.Errorf("block %d terminals = %d, want 2", b.Block, b.Terminals)
		}
		if !b.Feasible {
			t.Errorf("block %d unexpectedly infeasible", b.Block)
		}
	}
}

func TestAnalyzeInfeasible(t *testing.T) {
	p := build(t)
	// Move everything into block 0: size 8 > 5.
	for v := 0; v < p.Hypergraph().NumNodes(); v++ {
		p.Move(hypergraph.NodeID(v), 0)
	}
	r := Analyze(p, 2)
	if r.Feasible {
		t.Error("overfull solution reported feasible")
	}
	if r.K != 1 {
		t.Errorf("K = %d, want 1", r.K)
	}
	if r.Blocks[0].Feasible {
		t.Error("block 0 must violate")
	}
}

func TestWriteAndSummary(t *testing.T) {
	p := build(t)
	r := Analyze(p, 2)
	var buf bytes.Buffer
	r.Write(&buf)
	out := buf.String()
	for _, want := range []string{"blocks=2", "fill:", "pin util:", "block", "[ok]"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(r.Summary(), "k=2/2") {
		t.Errorf("summary = %q", r.Summary())
	}
}

func TestAnalyzeExternalBalanceMatchesPartition(t *testing.T) {
	p := build(t)
	r := Analyze(p, 2)
	if r.ExternalBalance != p.ExternalBalance(2) {
		t.Errorf("d_E mismatch: %v vs %v", r.ExternalBalance, p.ExternalBalance(2))
	}
}
