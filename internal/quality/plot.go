package quality

import (
	"fmt"
	"io"
	"strings"

	"fpart/internal/partition"
)

// FeasibilityPlot renders the paper's Figure 2 as ASCII art: every block is
// a point in the (terminals, size) plane, the device constraints S_MAX and
// T_MAX delimit the feasible rectangle, and points outside the rectangle
// are infeasible blocks. Width and height set the plot resolution in
// characters (minimums 20×10 enforced).
//
//	S │
//	  │   ┌──────────── feasible ──┐
//	  │   │ oo o   o               │  o feasible block
//	  │   │    o                   │  X infeasible block
//	  │   └─────────────────────T──┘        X
//	  └──────────────────────────────────── T
func FeasibilityPlot(w io.Writer, p *partition.Partition, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	dev := p.Device()
	smax, tmax := dev.SMax(), dev.TMax()

	// Scale so the rectangle occupies ~70% of each axis and outliers fit.
	maxS, maxT := smax, tmax
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		if s := p.Size(id); s > maxS {
			maxS = s
		}
		if tc := p.Terminals(id); tc > maxT {
			maxT = tc
		}
	}
	maxS = maxS*10/7 + 1
	maxT = maxT*10/7 + 1

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	// col/row mapping: row 0 is the top (largest size).
	col := func(tc int) int {
		c := tc * (width - 1) / maxT
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(s int) int {
		r := height - 1 - s*(height-1)/maxS
		if r < 0 {
			r = 0
		}
		return r
	}
	// Rectangle edges.
	rc, rr := col(tmax), row(smax)
	for x := 0; x <= rc; x++ {
		grid[rr][x] = '-'
	}
	for y := rr; y < height; y++ {
		grid[y][rc] = '|'
	}
	grid[rr][rc] = '+'
	// Blocks.
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		x, y := col(p.Terminals(id)), row(p.Size(id))
		mark := byte('o')
		if !p.Feasible(id) {
			mark = 'X'
		}
		if grid[y][x] == 'o' || grid[y][x] == 'X' {
			mark = '*' // overlapping blocks
		}
		grid[y][x] = mark
	}

	fmt.Fprintf(w, "size vs terminals (S_MAX=%d, T_MAX=%d): o feasible, X infeasible, * overlap\n", smax, tmax)
	for y, line := range grid {
		prefix := "  │"
		if y == 0 {
			prefix = "S │"
		}
		fmt.Fprintf(w, "%s%s\n", prefix, string(line))
	}
	fmt.Fprintf(w, "  └%s T\n", strings.Repeat("─", width))
}
