package quality

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestFeasibilityPlotFigure2(t *testing.T) {
	// Rebuild Figure 2b: two feasible blocks plus an oversized remainder.
	var b hypergraph.Builder
	var all []hypergraph.NodeID
	for i := 0; i < 30; i++ {
		all = append(all, b.AddInterior("v", 1))
	}
	for i := 0; i+1 < 30; i++ {
		b.AddNet("e", all[i], all[i+1])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 20, Fill: 1.0}
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	b2 := p.AddBlock()
	for i := 0; i < 8; i++ {
		p.Move(all[i], b1)
	}
	for i := 8; i < 17; i++ {
		p.Move(all[i], b2)
	}
	// Remainder (block 0) holds 13 > 10: infeasible.
	var buf bytes.Buffer
	FeasibilityPlot(&buf, p, 40, 12)
	out := buf.String()
	if !strings.Contains(out, "X") {
		t.Error("plot missing infeasible marker")
	}
	if !strings.Contains(out, "o") {
		t.Error("plot missing feasible marker")
	}
	if !strings.Contains(out, "S_MAX=10") || !strings.Contains(out, "T_MAX=20") {
		t.Error("plot missing device legend")
	}
	if !strings.Contains(out, "+") {
		t.Error("plot missing rectangle corner")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 14 { // legend + 12 rows + axis
		t.Errorf("plot height = %d lines, want 14", len(lines))
	}
}

func TestFeasibilityPlotMinimums(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	p := partition.New(h, device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0})
	var buf bytes.Buffer
	FeasibilityPlot(&buf, p, 1, 1) // clamped to 20x10
	if len(buf.String()) == 0 {
		t.Fatal("empty plot")
	}
}

func TestFeasibilityPlotOverlap(t *testing.T) {
	// Two identical empty blocks plus one with everything: identical (T,S)
	// points must render as '*'.
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 3)
	v1 := b.AddInterior("b", 3)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	b2 := p.AddBlock()
	p.Move(v0, b1)
	p.Move(v1, b2) // blocks b1 and b2: same size 3, same T 1
	var buf bytes.Buffer
	FeasibilityPlot(&buf, p, 30, 12)
	if !strings.Contains(buf.String(), "*") {
		t.Error("overlapping blocks not marked")
	}
}
