// Package quality computes solution-quality metrics for a finished
// partition: fill and pin utilization, cut statistics, and external-I/O
// spread — the quantities the FPART paper reasons about qualitatively
// (100% filling at early iterations, I/O saturation, pad balancing).
package quality

import (
	"fmt"
	"io"
	"sort"

	"fpart/internal/partition"
)

// BlockStat describes one non-empty block.
type BlockStat struct {
	Block     partition.BlockID
	Size      int
	Terminals int
	Pads      int
	Nodes     int
	Feasible  bool
	// Fill is Size/S_MAX; PinUtil is Terminals/T_MAX.
	Fill, PinUtil float64
}

// Report aggregates solution quality.
type Report struct {
	K        int // non-empty blocks
	M        int // lower bound used for the external-balance metric
	Feasible bool
	Cut      int // nets spanning >= 2 blocks
	TSum     int // total terminals across blocks

	Blocks []BlockStat

	AvgFill, MinFill, MaxFill          float64
	AvgPinUtil, MinPinUtil, MaxPinUtil float64
	MinPads, MaxPads                   int
	ExternalBalance                    float64 // d_k^E (§3.4)
}

// Analyze computes the report. m is the device lower bound (pass the value
// from the partitioning result); it parameterizes the external balance.
func Analyze(p *partition.Partition, m int) Report {
	dev := p.Device()
	r := Report{
		M:        m,
		Feasible: p.Classify() == partition.FeasibleSolution,
		Cut:      p.Cut(),
		TSum:     p.TerminalSum(),
		MinFill:  1e18, MinPinUtil: 1e18, MinPads: 1 << 30,
		ExternalBalance: p.ExternalBalance(m),
	}
	smax, tmax := float64(dev.SMax()), float64(dev.TMax())
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		st := BlockStat{
			Block:     id,
			Size:      p.Size(id),
			Terminals: p.Terminals(id),
			Pads:      p.Pads(id),
			Nodes:     p.Nodes(id),
			Feasible:  p.Feasible(id),
			Fill:      float64(p.Size(id)) / smax,
			PinUtil:   float64(p.Terminals(id)) / tmax,
		}
		r.Blocks = append(r.Blocks, st)
		r.K++
		r.AvgFill += st.Fill
		r.AvgPinUtil += st.PinUtil
		if st.Fill < r.MinFill {
			r.MinFill = st.Fill
		}
		if st.Fill > r.MaxFill {
			r.MaxFill = st.Fill
		}
		if st.PinUtil < r.MinPinUtil {
			r.MinPinUtil = st.PinUtil
		}
		if st.PinUtil > r.MaxPinUtil {
			r.MaxPinUtil = st.PinUtil
		}
		if st.Pads < r.MinPads {
			r.MinPads = st.Pads
		}
		if st.Pads > r.MaxPads {
			r.MaxPads = st.Pads
		}
	}
	if r.K > 0 {
		r.AvgFill /= float64(r.K)
		r.AvgPinUtil /= float64(r.K)
	} else {
		r.MinFill, r.MinPinUtil, r.MinPads = 0, 0, 0
	}
	sort.Slice(r.Blocks, func(i, j int) bool { return r.Blocks[i].Block < r.Blocks[j].Block })
	return r
}

// Write renders the report as aligned text.
func (r Report) Write(w io.Writer) {
	fmt.Fprintf(w, "blocks=%d (lower bound M=%d) feasible=%v cut=%d T_sum=%d\n",
		r.K, r.M, r.Feasible, r.Cut, r.TSum)
	fmt.Fprintf(w, "fill:     avg %.0f%%  min %.0f%%  max %.0f%%\n",
		100*r.AvgFill, 100*r.MinFill, 100*r.MaxFill)
	fmt.Fprintf(w, "pin util: avg %.0f%%  min %.0f%%  max %.0f%%\n",
		100*r.AvgPinUtil, 100*r.MinPinUtil, 100*r.MaxPinUtil)
	fmt.Fprintf(w, "external pads per block: min %d  max %d  balance d_E=%.3f\n",
		r.MinPads, r.MaxPads, r.ExternalBalance)
	for _, b := range r.Blocks {
		status := "ok"
		if !b.Feasible {
			status = "VIOLATES"
		}
		fmt.Fprintf(w, "  block %3d: S=%4d (%3.0f%%) T=%4d (%3.0f%%) pads=%3d nodes=%4d [%s]\n",
			b.Block, b.Size, 100*b.Fill, b.Terminals, 100*b.PinUtil, b.Pads, b.Nodes, status)
	}
}

// Summary is a one-line rendering for logs.
func (r Report) Summary() string {
	return fmt.Sprintf("k=%d/%d feasible=%v fill=%.0f%% pins=%.0f%% cut=%d",
		r.K, r.M, r.Feasible, 100*r.AvgFill, 100*r.AvgPinUtil, r.Cut)
}
