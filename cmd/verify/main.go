// Command verify checks a saved partitioning result against a circuit and
// a device: it reconstructs the partition from the assignment file,
// validates every device constraint, and prints the quality report.
//
// Usage:
//
//	fpart -device XC3020 -circuit s9234 -saveassign run.assign
//	verify -device XC3020 -circuit s9234 run.assign
//	verify -device XC3042 -format phg design.phg design.assign
//
// Exit status 0 means every block meets the device constraints.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/partition"
	"fpart/internal/quality"
)

func main() {
	devName := flag.String("device", "XC3020", "target device")
	format := flag.String("format", "phg", "circuit format when reading from file: phg or hgr")
	circuit := flag.String("circuit", "", "built-in benchmark instead of a circuit file")
	flag.Parse()

	dev, ok := device.ByName(*devName)
	if !ok {
		fail("unknown device %q", *devName)
	}

	var h *hypergraph.Hypergraph
	var assignPath string
	if *circuit != "" {
		spec, ok := gen.ByName(*circuit)
		if !ok {
			fail("unknown circuit %q", *circuit)
		}
		h = gen.Generate(spec, dev.Family)
		assignPath = flag.Arg(0)
	} else {
		if flag.NArg() < 2 {
			fail("usage: verify [-device D] <circuit file> <assignment file>")
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		switch *format {
		case "phg":
			h, err = netlist.ReadPHG(f)
		case "hgr":
			h, err = netlist.ReadHgr(f)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		assignPath = flag.Arg(1)
	}
	if assignPath == "" {
		fail("no assignment file given")
	}
	af, err := os.Open(assignPath)
	if err != nil {
		fail("%v", err)
	}
	blocks, k, err := netlist.ReadAssignment(af)
	af.Close()
	if err != nil {
		fail("%v", err)
	}
	p, err := partition.FromAssignment(h, dev, blocks, k)
	if err != nil {
		fail("%v", err)
	}
	if err := p.Validate(); err != nil {
		fail("internal inconsistency: %v", err)
	}
	rep := quality.Analyze(p, device.LowerBound(h, dev))
	rep.Write(os.Stdout)
	if !rep.Feasible {
		fmt.Fprintln(os.Stderr, "verify: INFEASIBLE")
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "verify: "+format+"\n", args...)
	os.Exit(1)
}
