// Command gencircuit emits the synthetic MCNC benchmark circuits (or an
// anonymous synthetic circuit) as PHG or hMETIS .hgr files.
//
// Usage:
//
//	gencircuit -circuit s9234 -family XC3000 > s9234.phg
//	gencircuit -circuit all -dir bench/        # write the whole suite
//	gencircuit -nodes 2000 -pads 150 -seed 7 -format hgr > syn.hgr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name from Table 1, or 'all'")
	family := flag.String("family", "XC3000", "mapping family: XC2000 or XC3000")
	format := flag.String("format", "phg", "output format: phg or hgr")
	dir := flag.String("dir", "", "with -circuit all: directory to write files into")
	nodes := flag.Int("nodes", 0, "anonymous synthetic circuit: CLB count")
	pads := flag.Int("pads", 0, "anonymous synthetic circuit: pad count")
	seed := flag.Int64("seed", 1, "anonymous synthetic circuit: seed")
	seq := flag.Bool("seq", false, "anonymous synthetic circuit: add a clock net")
	flag.Parse()

	fam := device.XC3000
	switch *family {
	case "XC2000":
		fam = device.XC2000
	case "XC3000":
	default:
		fail("unknown family %q", *family)
	}

	write := func(w io.Writer, h *hypergraph.Hypergraph) error {
		if *format == "hgr" {
			return netlist.WriteHgr(w, h)
		}
		if *format != "phg" {
			return fmt.Errorf("unknown format %q", *format)
		}
		return netlist.WritePHG(w, h)
	}

	switch {
	case *circuit == "all":
		if *dir == "" {
			fail("-circuit all requires -dir")
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fail("%v", err)
		}
		for _, s := range gen.MCNC {
			h := gen.Generate(s, fam)
			path := filepath.Join(*dir, fmt.Sprintf("%s.%s.%s", s.Name, *family, *format))
			f, err := os.Create(path)
			if err != nil {
				fail("%v", err)
			}
			if err := write(f, h); err != nil {
				fail("%v", err)
			}
			if err := f.Close(); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", path, h)
		}
	case *circuit != "":
		s, ok := gen.ByName(*circuit)
		if !ok {
			fail("unknown circuit %q", *circuit)
		}
		if err := write(os.Stdout, gen.Generate(s, fam)); err != nil {
			fail("%v", err)
		}
	case *nodes > 0:
		if err := write(os.Stdout, gen.Synthetic(*nodes, *pads, *seed, *seq)); err != nil {
			fail("%v", err)
		}
	default:
		fail("nothing to do: pass -circuit or -nodes (see -h)")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gencircuit: "+format+"\n", args...)
	os.Exit(1)
}
