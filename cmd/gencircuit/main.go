// Command gencircuit emits the synthetic MCNC benchmark circuits (or an
// anonymous synthetic circuit) as PHG or hMETIS .hgr files.
//
// Usage:
//
//	gencircuit -circuit s9234 -family XC3000 > s9234.phg
//	gencircuit -circuit all -dir bench/        # write the whole suite
//	gencircuit -nodes 2000 -pads 150 -seed 7 -format hgr > syn.hgr
//	gencircuit -cells 1000000 -seed 1 > big.phg  # streamed, never in memory
//
// -cells is the scale mode: it streams a Rent's-rule synthetic netlist of
// that many CLBs straight to stdout (PHG only), so a million-cell circuit
// costs generator time but not memory. -nodes builds the same circuit in
// memory and supports both formats; the two agree byte for byte on PHG.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
)

type options struct {
	circuit   string
	family    string
	format    string
	dir       string
	nodes     int
	cells     int
	pads      int
	seed      int64
	seq       bool
	resources string
	stamps    []gen.ResStamp
}

// validate rejects nonsensical parameter mixes outright, naming the flag —
// failing fast beats silently ignoring a flag the user did choose.
func (o *options) validate() error {
	for _, b := range []struct {
		name string
		v    int
	}{
		{"-nodes", o.nodes},
		{"-cells", o.cells},
		{"-pads", o.pads},
	} {
		if b.v < 0 {
			return fmt.Errorf("%s must not be negative (got %d)", b.name, b.v)
		}
	}
	modes := 0
	if o.circuit != "" {
		modes++
	}
	if o.nodes > 0 {
		modes++
	}
	if o.cells > 0 {
		modes++
	}
	if modes == 0 {
		return errors.New("nothing to do: pass -circuit, -nodes, or -cells (see -h)")
	}
	if modes > 1 {
		return errors.New("-circuit, -nodes, and -cells are mutually exclusive")
	}
	if o.format != "phg" && o.format != "hgr" {
		return fmt.Errorf("unknown format %q (valid: phg, hgr)", o.format)
	}
	if o.cells > 0 && o.format != "phg" {
		return errors.New("-cells streams PHG only; use -nodes for hgr output")
	}
	if o.circuit == "all" && o.dir == "" {
		return errors.New("-circuit all requires -dir")
	}
	if o.dir != "" && o.circuit != "all" {
		return errors.New("-dir only applies to -circuit all")
	}
	if o.family != "XC2000" && o.family != "XC3000" {
		return fmt.Errorf("unknown family %q (valid: XC2000, XC3000)", o.family)
	}
	if o.resources != "" {
		if o.cells == 0 {
			return errors.New("-resources only applies to -cells (streamed scale mode)")
		}
		stamps, err := gen.ParseStamps(o.resources)
		if err != nil {
			return err
		}
		o.stamps = stamps
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.circuit, "circuit", "", "benchmark name from Table 1, or 'all'")
	flag.StringVar(&o.family, "family", "XC3000", "mapping family: XC2000 or XC3000")
	flag.StringVar(&o.format, "format", "phg", "output format: phg or hgr")
	flag.StringVar(&o.dir, "dir", "", "with -circuit all: directory to write files into")
	flag.IntVar(&o.nodes, "nodes", 0, "anonymous synthetic circuit: CLB count (built in memory)")
	flag.IntVar(&o.cells, "cells", 0, "scale mode: CLB count, streamed to stdout as PHG")
	flag.IntVar(&o.pads, "pads", 0, "synthetic circuit: pad count")
	flag.Int64Var(&o.seed, "seed", 1, "synthetic circuit: seed")
	flag.BoolVar(&o.seq, "seq", false, "synthetic circuit: add a clock net")
	flag.StringVar(&o.resources, "resources", "", "with -cells: stamp deterministic per-cell resource demands, NAME:PERIOD pairs like 'DSP:16,BRAM:64' (one cell in PERIOD demands one unit)")
	flag.Parse()

	if err := o.validate(); err != nil {
		fail("%v", err)
	}

	fam := device.XC3000
	if o.family == "XC2000" {
		fam = device.XC2000
	}

	write := func(w io.Writer, h *hypergraph.Hypergraph) error {
		if o.format == "hgr" {
			return netlist.WriteHgr(w, h)
		}
		return netlist.WritePHG(w, h)
	}

	switch {
	case o.cells > 0:
		if err := gen.StreamPHG(os.Stdout, o.cells, o.pads, o.seed, o.seq, o.stamps); err != nil {
			fail("%v", err)
		}
	case o.circuit == "all":
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			fail("%v", err)
		}
		for _, s := range gen.MCNC {
			h := gen.Generate(s, fam)
			path := filepath.Join(o.dir, fmt.Sprintf("%s.%s.%s", s.Name, o.family, o.format))
			f, err := os.Create(path)
			if err != nil {
				fail("%v", err)
			}
			if err := write(f, h); err != nil {
				fail("%v", err)
			}
			if err := f.Close(); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", path, h)
		}
	case o.circuit != "":
		s, ok := gen.ByName(o.circuit)
		if !ok {
			fail("unknown circuit %q", o.circuit)
		}
		if err := write(os.Stdout, gen.Generate(s, fam)); err != nil {
			fail("%v", err)
		}
	default:
		if err := write(os.Stdout, gen.Synthetic(o.nodes, o.pads, o.seed, o.seq)); err != nil {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gencircuit: "+format+"\n", args...)
	os.Exit(1)
}
