// Command fpart partitions a circuit netlist onto a named FPGA device
// using the FPART algorithm (or one of the baselines).
//
// Usage:
//
//	fpart -device XC3020 design.phg
//	fpart -device XC3042 -format hgr -method flow design.hgr
//	fpart -device XC3090 -format blif -arch XC3000 design.blif
//	fpart -device XC3020 -circuit s9234                    # built-in benchmark
//	fpart -device XC3020 -circuit s9234 -stats             # quality + effort report
//	fpart -device XC3020 -circuit s9234 -timeout 10s       # bounded run
//	fpart -device XC3020 -circuit s9234 -trace-format text # event stream on stderr
//	fpart -device XC3020 -circuit s9234 -out dir/          # per-block netlists
//
// BLIF inputs are technology-mapped to CLBs for the architecture selected
// with -arch before partitioning.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/flow"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/kwayx"
	"fpart/internal/multilevel"
	"fpart/internal/netlist"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/quality"
	"fpart/internal/replicate"
	"fpart/internal/techmap"
)

func main() {
	devName := flag.String("device", "XC3020", "target device: XC3020, XC3042, XC3090, XC2064")
	format := flag.String("format", "phg", "input format: phg, hgr, blif")
	arch := flag.String("arch", "", "CLB architecture for BLIF mapping: XC2000 or XC3000 (default: the device's family)")
	method := flag.String("method", "fpart", "partitioner: fpart, kwayx, flow, multilevel")
	circuit := flag.String("circuit", "", "use a built-in synthetic MCNC benchmark instead of a file")
	assign := flag.Bool("assign", false, "print the full node-to-block assignment")
	stats := flag.Bool("stats", false, "print the solution-quality report (and, for -method fpart, the effort counters)")
	plot := flag.Bool("plot", false, "render the Figure 2 feasibility scatter (blocks in (T,S) space)")
	outDir := flag.String("out", "", "write each block as a PHG netlist into this directory")
	saveAssign := flag.String("saveassign", "", "write the node-to-block assignment to this file (verify with cmd/verify)")
	replicateFlag := flag.Bool("replicate", false, "after partitioning a BLIF input, run the functional replication pass (needs -format blif)")
	fill := flag.Float64("fill", 0, "override the device filling ratio δ (0 keeps the paper's value)")
	timeout := flag.Duration("timeout", 0, "abort partitioning after this duration, e.g. 30s (0 = no limit; -method fpart only)")
	traceFormat := flag.String("trace-format", "", "stream algorithm events to stderr: text or json (-method fpart only)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the partitioning run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken after partitioning) to this file")
	flag.Parse()

	dev, ok := device.ByName(*devName)
	if !ok {
		fail("unknown device %q (valid: XC3020, XC3042, XC3090, XC2064)", *devName)
	}
	if *fill != 0 {
		dev = dev.WithFill(*fill)
	}

	h, name, mapped, err := loadCircuit(*circuit, flag.Arg(0), *format, *arch, dev)
	if err != nil {
		fail("%v", err)
	}
	if *replicateFlag && mapped == nil {
		fail("-replicate requires -format blif (functional direction information)")
	}

	st := h.ComputeStats()
	m := device.LowerBound(h, dev)
	fmt.Printf("circuit %s: %d CLBs, %d pads, %d nets\n", name, st.Interior, st.Pads, st.Nets)
	fmt.Printf("device %s: S_MAX=%d T_MAX=%d, lower bound M=%d\n", dev.Name, dev.SMax(), dev.TMax(), m)

	var sink obs.Sink
	switch *traceFormat {
	case "":
	case "text":
		sink = obs.NewTextSink(os.Stderr)
	case "json":
		sink = obs.NewJSONSink(os.Stderr)
	default:
		fail("unknown trace format %q (valid: text, json)", *traceFormat)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, perr := os.Create(*cpuprofile)
		if perr != nil {
			fail("%v", perr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			fail("%v", perr)
		}
		defer f.Close()
	}
	p, k, feasible, runStats, err := runMethod(ctx, *method, h, dev, sink)
	if *cpuprofile != "" {
		// Stop before the error checks so an aborted run still leaves a
		// usable profile of the work done.
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, perr := os.Create(*memprofile)
		if perr != nil {
			fail("%v", perr)
		}
		runtime.GC() // surface only live allocations
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			f.Close()
			fail("%v", perr)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", *memprofile)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fail("timed out after %v (raise -timeout or relax the instance)", *timeout)
	}
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("result: %d devices, feasible=%v\n", k, feasible)
	if *stats {
		quality.Analyze(p, m).Write(os.Stdout)
		if runStats != nil {
			runStats.Report(os.Stdout)
		}
	} else {
		for b := 0; b < p.NumBlocks(); b++ {
			id := partition.BlockID(b)
			if p.Nodes(id) == 0 {
				continue
			}
			status := "ok"
			if !p.Feasible(id) {
				status = "VIOLATES"
			}
			fmt.Printf("  block %2d: size %4d/%d  terminals %4d/%d  pads %3d  [%s]\n",
				b, p.Size(id), dev.SMax(), p.Terminals(id), dev.TMax(), p.Pads(id), status)
		}
	}
	if *plot {
		quality.FeasibilityPlot(os.Stdout, p, 64, 18)
	}
	if *assign {
		for v := 0; v < h.NumNodes(); v++ {
			fmt.Printf("%s %d\n", h.Node(hypergraph.NodeID(v)).Name, p.Block(hypergraph.NodeID(v)))
		}
	}
	if *outDir != "" {
		if err := writeBlocks(*outDir, p); err != nil {
			fail("%v", err)
		}
	}
	if *replicateFlag && feasible {
		res, err := replicate.Reduce(mapped, h, p, dev)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("replication: %d copies added, total terminal reduction %d (feasible=%v)\n",
			res.CopiesAdded, res.TotalReduction(), res.Feasible)
		for b, before := range res.TerminalsBefore {
			if after := res.TerminalsAfter[b]; after != before {
				fmt.Printf("  block %d: T %d -> %d (replicas %v)\n", b, before, after, res.Replicas[b])
			}
		}
	}
	if *saveAssign != "" {
		f, err := os.Create(*saveAssign)
		if err != nil {
			fail("%v", err)
		}
		if err := netlist.WriteAssignment(f, p); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote assignment to %s\n", *saveAssign)
	}
}

// runMethod dispatches the chosen partitioner and returns its partition.
// The effort counters are non-nil for fpart only; ctx and sink likewise
// apply to the fpart method (the baselines have no cancellation points).
func runMethod(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, sink obs.Sink) (*partition.Partition, int, bool, *core.Stats, error) {
	switch method {
	case "fpart":
		cfg := core.Default()
		cfg.Sink = sink
		r, err := core.Run(ctx, h, dev, cfg)
		if err != nil {
			return nil, 0, false, nil, err
		}
		fmt.Printf("FPART: %d iterations, %d passes, %d moves, %v\n",
			r.Stats.Iterations, r.Stats.Passes, r.Stats.MovesApplied, r.Elapsed.Round(time.Millisecond))
		return r.Partition, r.K, r.Feasible, &r.Stats, nil
	case "kwayx":
		r, err := kwayx.Partition(h, dev, kwayx.Config{})
		if err != nil {
			return nil, 0, false, nil, err
		}
		return r.Partition, r.K, r.Feasible, nil, nil
	case "flow":
		r, err := flow.Partition(h, dev, flow.Config{})
		if err != nil {
			return nil, 0, false, nil, err
		}
		return r.Partition, r.K, r.Feasible, nil, nil
	case "multilevel":
		r, err := multilevel.Partition(h, dev, multilevel.Config{})
		if err != nil {
			return nil, 0, false, nil, err
		}
		return r.Partition, r.K, r.Feasible, nil, nil
	default:
		return nil, 0, false, nil, fmt.Errorf("unknown method %q (valid: fpart, kwayx, flow, multilevel)", method)
	}
}

// writeBlocks dumps each non-empty block as blockN.phg under dir. Cut nets
// appear in each incident block's file with the pins that block owns.
func writeBlocks(dir string, p *partition.Partition) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	h := p.Hypergraph()
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		sub, _ := h.Induced(p.NodesIn(id))
		path := filepath.Join(dir, fmt.Sprintf("block%d.phg", b))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := netlist.WritePHG(f, sub); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, sub)
	}
	return nil
}

func loadCircuit(builtin, path, format, arch string, dev device.Device) (*hypergraph.Hypergraph, string, *techmap.Mapped, error) {
	if builtin != "" {
		spec, ok := gen.ByName(builtin)
		if !ok {
			return nil, "", nil, fmt.Errorf("unknown built-in circuit %q (valid: %v)", builtin, names())
		}
		return gen.Generate(spec, dev.Family), builtin, nil, nil
	}
	if path == "" {
		return nil, "", nil, fmt.Errorf("no input file (or use -circuit <name>)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	switch format {
	case "phg":
		h, err := netlist.ReadPHG(f)
		return h, path, nil, err
	case "hgr":
		h, err := netlist.ReadHgr(f)
		return h, path, nil, err
	case "blif":
		c, err := netlist.ReadBLIF(f)
		if err != nil {
			return nil, "", nil, err
		}
		a := techmap.XC3000Arch
		switch {
		case arch == "XC2000" || (arch == "" && dev.Family == device.XC2000):
			a = techmap.XC2000Arch
		case arch == "XC3000" || arch == "":
		default:
			return nil, "", nil, fmt.Errorf("unknown arch %q", arch)
		}
		m, err := techmap.Map(c, a)
		if err != nil {
			return nil, "", nil, err
		}
		h, err := m.Hypergraph()
		return h, path, m, err
	default:
		return nil, "", nil, fmt.Errorf("unknown format %q (valid: phg, hgr, blif)", format)
	}
}

func names() []string {
	out := make([]string, len(gen.MCNC))
	for i, s := range gen.MCNC {
		out[i] = s.Name
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fpart: "+format+"\n", args...)
	os.Exit(1)
}
