// Command fpart partitions a circuit netlist onto a named FPGA device
// using the FPART algorithm (or one of the baselines).
//
// Usage:
//
//	fpart -device XC3020 design.phg
//	fpart -device XC3042 -format hgr -method flow design.hgr
//	fpart -device XC3090 -format blif -arch XC3000 design.blif
//	fpart -device XC3020 -circuit s9234                    # built-in benchmark
//	fpart -device XC3020 -circuit s9234 -stats             # quality + effort report
//	fpart -device XC3020 -circuit s9234 -timeout 10s       # bounded run
//	fpart -device XC3020 -circuit s9234 -trace-format text # event stream on stderr
//	fpart -device XC3020 -circuit s9234 -out dir/          # per-block netlists
//	fpart -list-methods                                    # engine registry listing
//
// BLIF inputs are technology-mapped to CLBs for the architecture selected
// with -arch before partitioning. Circuit loading and method dispatch are
// shared with the fpartd service via internal/driver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fpart/internal/board"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/engine"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/quality"
	"fpart/internal/replicate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fpart: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole invocation so deferred cleanup (profile teardown)
// survives error exits — a bare os.Exit in the middle of main would skip
// it and truncate the CPU profile.
func run() error {
	devName := flag.String("device", "XC3020", "target device: a catalog name (XC3020, XC3042, XC3090, XC2064), synthetic CELLSxPINS, or a resource vector like 'LUT:1500,FF:3000,DSP:12/200'")
	boardSpec := flag.String("board", "", "gate the result on a multi-FPGA board: crossbar:N, chain:N[:wires=W], or mesh:CxR[:wires=W]")
	format := flag.String("format", "phg", "input format: phg, hgr, blif")
	arch := flag.String("arch", "", "CLB architecture for BLIF mapping: XC2000 or XC3000 (default: the device's family)")
	method := flag.String("method", "fpart", "partitioner: "+engine.UsageString()+" (see -list-methods)")
	circuit := flag.String("circuit", "", "use a built-in synthetic MCNC benchmark instead of a file")
	assign := flag.Bool("assign", false, "print the full node-to-block assignment")
	stats := flag.Bool("stats", false, "print the solution-quality report (and, for -method fpart, the effort counters)")
	plot := flag.Bool("plot", false, "render the Figure 2 feasibility scatter (blocks in (T,S) space)")
	outDir := flag.String("out", "", "write each block as a PHG netlist into this directory")
	saveAssign := flag.String("saveassign", "", "write the node-to-block assignment to this file (verify with cmd/verify)")
	replicateFlag := flag.Bool("replicate", false, "after partitioning a BLIF input, run the functional replication pass (needs -format blif)")
	fill := flag.Float64("fill", 0, "override the device filling ratio δ (0 keeps the paper's value)")
	timeout := flag.Duration("timeout", 0, "abort partitioning after this duration, e.g. 30s (0 = no limit)")
	parallel := flag.Int("parallel", 0, "worker budget for speculation and portfolio racing (0 = all CPUs)")
	spec := flag.Int("spec", 1, "speculative peeling width for -method fpart: race this many candidate bipartitions per peel step (1 = sequential)")
	traceFormat := flag.String("trace-format", "", "stream algorithm events to stderr: text or json")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the partitioning run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken after partitioning) to this file")
	listMethods := flag.Bool("list-methods", false, "list the registered partitioning methods with their capability flags and exit")
	flag.Parse()

	if *listMethods {
		engine.WriteList(os.Stdout)
		return nil
	}

	dev, err := device.ParseSpec(*devName)
	if err != nil {
		return err
	}
	if *fill != 0 {
		dev = dev.WithFill(*fill)
	}
	var brd *board.Board
	if *boardSpec != "" {
		b, err := board.ParseSpec(*boardSpec)
		if err != nil {
			return err
		}
		brd = &b
	}

	c, err := driver.Load(driver.Source{
		Builtin: *circuit,
		Path:    flag.Arg(0),
		Format:  *format,
		Arch:    *arch,
	}, dev)
	if err != nil {
		if *circuit == "" && flag.Arg(0) == "" {
			return fmt.Errorf("no input file (or use -circuit <name>)")
		}
		return err
	}
	h := c.Hypergraph
	if *replicateFlag && c.Mapped == nil {
		return fmt.Errorf("-replicate requires -format blif (functional direction information)")
	}

	st := h.ComputeStats()
	m := device.LowerBound(h, dev)
	fmt.Printf("circuit %s: %d CLBs, %d pads, %d nets\n", c.Name, st.Interior, st.Pads, st.Nets)
	fmt.Printf("device %s: S_MAX=%d T_MAX=%d, lower bound M=%d\n", dev.Name, dev.SMax(), dev.TMax(), m)
	for _, r := range dev.Resources {
		fmt.Printf("  resource %s: cap %d per device, circuit total %d\n", r.Name, r.Cap, h.TotalResource(r.Name))
	}
	if brd != nil {
		fmt.Printf("board %s: %d slots", brd.Topology, brd.Slots)
		if brd.WiresPerLink > 0 {
			fmt.Printf(", %d wires/link", brd.WiresPerLink)
		}
		fmt.Println()
	}

	var sink obs.Sink
	switch *traceFormat {
	case "":
	case "text":
		sink = obs.NewTextSink(os.Stderr)
	case "json":
		sink = obs.NewJSONSink(os.Stderr)
	default:
		return fmt.Errorf("unknown trace format %q (valid: text, json)", *traceFormat)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stopProfiles, err := driver.StartProfiles(*cpuprofile, *memprofile, driver.StderrNotify)
	if err != nil {
		return err
	}
	// Deferred (not called inline after Run) so an aborted or panicking
	// run still leaves usable profiles of the work done.
	defer stopProfiles()

	res, err := driver.RunOpts(ctx, *method, h, dev, driver.Options{
		Sink:      sink,
		SpecWidth: *spec,
		Budget:    core.NewBudget(driver.ClampParallel(*parallel)),
		Board:     brd,
	})
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("timed out after %v (raise -timeout or relax the instance)", *timeout)
	}
	if err != nil {
		return err
	}
	if res.Stats != nil {
		fmt.Printf("FPART: %d iterations, %d passes, %d moves, %v\n",
			res.Stats.Iterations, res.Stats.Passes, res.Stats.MovesApplied, res.Elapsed.Round(time.Millisecond))
	}
	p := res.Partition

	fmt.Printf("result: %d devices, feasible=%v, cut=%d\n", res.K, res.Feasible, p.Cut())
	if brd != nil {
		if res.Board == nil {
			fmt.Printf("board: UNPLACEABLE (%d blocks on %d slots)\n", res.K, brd.Slots)
		} else {
			fmt.Printf("board: %d inter-FPGA nets, %d hops, max link load %d, routable=%v\n",
				res.Board.InterNets, res.Board.TotalHops, res.Board.MaxLinkLoad, res.Board.Routable)
		}
	}
	if *stats {
		quality.Analyze(p, res.M).Write(os.Stdout)
		if res.Stats != nil {
			res.Stats.Report(os.Stdout)
		}
	} else {
		for b := 0; b < p.NumBlocks(); b++ {
			id := partition.BlockID(b)
			if p.Nodes(id) == 0 {
				continue
			}
			status := "ok"
			if !p.Feasible(id) {
				status = "VIOLATES"
			}
			resCols := ""
			for r := 0; r < p.NumRes(); r++ {
				resCols += fmt.Sprintf("  %s %d/%d", dev.Resources[r].Name, p.Res(id, r), p.ResCap(r))
			}
			fmt.Printf("  block %2d: size %4d/%d  terminals %4d/%d  pads %3d%s  [%s]\n",
				b, p.Size(id), dev.SMax(), p.Terminals(id), dev.TMax(), p.Pads(id), resCols, status)
		}
	}
	if *plot {
		quality.FeasibilityPlot(os.Stdout, p, 64, 18)
	}
	if *assign {
		for v := 0; v < h.NumNodes(); v++ {
			fmt.Printf("%s %d\n", h.Node(hypergraph.NodeID(v)).Name, p.Block(hypergraph.NodeID(v)))
		}
	}
	if *outDir != "" {
		if err := writeBlocks(*outDir, p); err != nil {
			return err
		}
	}
	if *replicateFlag && res.Feasible {
		rr, err := replicate.Reduce(c.Mapped, h, p, dev)
		if err != nil {
			return err
		}
		fmt.Printf("replication: %d copies added, total terminal reduction %d (feasible=%v)\n",
			rr.CopiesAdded, rr.TotalReduction(), rr.Feasible)
		for b, before := range rr.TerminalsBefore {
			if after := rr.TerminalsAfter[b]; after != before {
				fmt.Printf("  block %d: T %d -> %d (replicas %v)\n", b, before, after, rr.Replicas[b])
			}
		}
	}
	if *saveAssign != "" {
		f, err := os.Create(*saveAssign)
		if err != nil {
			return err
		}
		if err := netlist.WriteAssignment(f, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote assignment to %s\n", *saveAssign)
	}
	return nil
}

// writeBlocks dumps each non-empty block as blockN.phg under dir. Cut nets
// appear in each incident block's file with the pins that block owns.
func writeBlocks(dir string, p *partition.Partition) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	h := p.Hypergraph()
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		sub, _ := h.Induced(p.NodesIn(id))
		path := filepath.Join(dir, fmt.Sprintf("block%d.phg", b))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := netlist.WritePHG(f, sub); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, sub)
	}
	return nil
}
