package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateRejectsNegativeBounds(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring of the error, naming the offending flag
	}{
		{"workers", func(o *options) { o.workers = -1 }, "-workers"},
		{"queue", func(o *options) { o.queueDepth = -8 }, "-queue"},
		{"cache", func(o *options) { o.cacheEntries = -2 }, "-cache"},
		{"retention", func(o *options) { o.retention = -100 }, "-retention"},
		{"spec", func(o *options) { o.spec = -1 }, "-spec"},
		{"replicas", func(o *options) { o.replicas = -4 }, "-replicas"},
		{"store-bytes", func(o *options) { o.dataDir = "d"; o.storeBytes = -1 }, "-store-bytes"},
		{"grace", func(o *options) { o.grace = -time.Second }, "-grace"},
		{"default-timeout", func(o *options) { o.defaultTimeout = -time.Minute }, "-default-timeout"},
		{"steal-interval", func(o *options) { o.stealInterval = -time.Millisecond }, "-steal-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := options{addr: "127.0.0.1:8080"}
			tc.mut(&o)
			err := o.validate()
			if err == nil {
				t.Fatalf("%s: negative value must be rejected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

func TestValidateClusterAndStoreCoupling(t *testing.T) {
	// -store-bytes without -data-dir is a configuration contradiction.
	o := options{addr: "a:1", storeBytes: 1 << 20}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "-data-dir") {
		t.Fatalf("store-bytes without data-dir: got %v", err)
	}
	// -advertise without -peers likewise.
	o = options{addr: "a:1", advertise: "a:1"}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "-peers") {
		t.Fatalf("advertise without peers: got %v", err)
	}
	// The advertise address must appear in the membership.
	o = options{addr: "a:1", peers: "b:2,c:3"}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "a:1") {
		t.Fatalf("self missing from peers: got %v", err)
	}
	// -degrade-at is a fraction; 2.0 is a typo, -1 is the documented off
	// switch.
	o = options{addr: "a:1", degradeAt: 2}
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "-degrade-at") {
		t.Fatalf("degrade-at > 1: got %v", err)
	}
	o = options{addr: "a:1", degradeAt: -1}
	if err := o.validate(); err != nil {
		t.Fatalf("degrade-at < 0 disables, must validate: %v", err)
	}
}

func TestValidateAcceptsWorkingConfigs(t *testing.T) {
	good := []options{
		{addr: "127.0.0.1:8080"},
		{addr: "127.0.0.1:9001", dataDir: "/tmp/x", storeBytes: 1 << 20},
		{addr: "127.0.0.1:9001", peers: "127.0.0.1:9001,127.0.0.1:9002"},
		{addr: ":0", advertise: "10.0.0.1:9001", peers: "10.0.0.1:9001, 10.0.0.2:9001"},
	}
	for i, o := range good {
		if err := o.validate(); err != nil {
			t.Errorf("config %d rejected: %v", i, err)
		}
	}
}

func TestPeerListParsing(t *testing.T) {
	o := options{peers: " a:1 , b:2 ,c:3"}
	got := o.peerList()
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("peerList: %v", got)
	}
	if (&options{}).peerList() != nil {
		t.Fatal("empty -peers must mean single-node")
	}
	o = options{addr: "x:1", peers: "x:1,,y:2"}
	if err := o.validate(); err == nil {
		t.Fatal("empty peer entry must be rejected")
	}
}
