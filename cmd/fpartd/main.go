// Command fpartd is the long-running partitioning daemon: an HTTP/JSON
// front end over the same pipeline the one-shot fpart CLI drives, with a
// bounded job queue, a worker pool, a content-addressed result cache, and
// live event streaming. See internal/service for the API surface.
//
// Usage:
//
//	fpartd -addr :8080
//	fpartd -addr 127.0.0.1:0 -workers 4 -queue 128 -cache 256
//
// With -data-dir the result cache gains a disk-backed layer that survives
// restarts; with -peers several daemons form a cluster that routes each
// submission to its fingerprint's ring owner and steals work from busy
// peers:
//
//	fpartd -addr 127.0.0.1:9001 -data-dir /var/lib/fpartd \
//	       -peers 127.0.0.1:9001,127.0.0.1:9002 -advertise 127.0.0.1:9001
//
// Submit a job and follow it:
//
//	curl -s localhost:8080/v1/partition -d '{"circuit":"s9234","device":"XC3020"}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -sN localhost:8080/v1/jobs/job-1/events
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops admitting work, lets the HTTP server
// finish open requests, and drains in-flight jobs until -grace expires,
// after which they are canceled via their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpart/internal/cluster"
	"fpart/internal/driver"
	"fpart/internal/service"
	"fpart/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fpartd: %v\n", err)
		os.Exit(1)
	}
}

// options collects the flag values so boot validation is testable apart
// from flag.Parse and the daemon lifecycle.
type options struct {
	addr           string
	workers        int
	spec           int
	queueDepth     int
	cacheEntries   int
	retention      int
	defaultTimeout time.Duration
	grace          time.Duration

	dataDir    string
	storeBytes int64

	peers         string
	advertise     string
	replicas      int
	stealInterval time.Duration
	degradeAt     float64

	cpuprofile string
	memprofile string
}

// validate rejects nonsensical boot parameters outright. A negative pool
// or queue size is always a typo; failing fast with the flag's name beats
// silently normalizing it to a default the operator did not choose.
func (o *options) validate() error {
	type bound struct {
		name string
		v    int64
	}
	for _, b := range []bound{
		{"-workers", int64(o.workers)},
		{"-queue", int64(o.queueDepth)},
		{"-cache", int64(o.cacheEntries)},
		{"-retention", int64(o.retention)},
		{"-spec", int64(o.spec)},
		{"-replicas", int64(o.replicas)},
		{"-store-bytes", o.storeBytes},
		{"-grace", int64(o.grace)},
		{"-default-timeout", int64(o.defaultTimeout)},
		{"-steal-interval", int64(o.stealInterval)},
	} {
		if b.v < 0 {
			return fmt.Errorf("%s must not be negative (got %v)", b.name, b.v)
		}
	}
	if o.degradeAt > 1 {
		return fmt.Errorf("-degrade-at is a queue-fill fraction in [0,1], or negative to disable (got %v)", o.degradeAt)
	}
	if o.dataDir == "" && o.storeBytes != 0 {
		return errors.New("-store-bytes needs -data-dir")
	}
	peers := o.peerList()
	if len(peers) == 0 {
		if o.advertise != "" {
			return errors.New("-advertise needs -peers")
		}
		return nil
	}
	self := o.selfAddr()
	found := false
	for _, p := range peers {
		if p == "" {
			return fmt.Errorf("-peers has an empty entry: %q", o.peers)
		}
		if p == self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("advertise address %q missing from -peers %q", self, o.peers)
	}
	return nil
}

// peerList splits -peers, trimming whitespace; empty means single-node.
func (o *options) peerList() []string {
	if strings.TrimSpace(o.peers) == "" {
		return nil
	}
	parts := strings.Split(o.peers, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// selfAddr is this peer's advertise address: -advertise, or -addr when
// unset.
func (o *options) selfAddr() string {
	if o.advertise != "" {
		return o.advertise
	}
	return o.addr
}

// run carries the whole daemon lifecycle so deferred cleanup (profile
// teardown) survives error exits and panics.
func run() error {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size and shared CPU budget (0 = GOMAXPROCS)")
	flag.IntVar(&o.spec, "spec", 1, "speculative peeling width for fpart jobs: race this many candidates per peel step within the worker budget (1 = sequential)")
	flag.IntVar(&o.queueDepth, "queue", 0, "bounded job queue depth; overflow is rejected with 429 (0 = 64)")
	flag.IntVar(&o.cacheEntries, "cache", 0, "result cache capacity in entries, LRU-evicted (0 = 128)")
	flag.IntVar(&o.retention, "retention", 0, "finished jobs kept queryable (0 = 1024)")
	flag.DurationVar(&o.defaultTimeout, "default-timeout", 0, "per-job deadline when the request sets none (0 = unlimited)")
	flag.DurationVar(&o.grace, "grace", 30*time.Second, "shutdown grace period before in-flight jobs are canceled")
	flag.StringVar(&o.dataDir, "data-dir", "", "directory for the disk-backed result store; results survive restarts (empty = memory only)")
	flag.Int64Var(&o.storeBytes, "store-bytes", 0, "disk store byte budget, LRU-evicted (0 = 256 MiB; needs -data-dir)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated static cluster membership (host:port,...); empty = single node")
	flag.StringVar(&o.advertise, "advertise", "", "this peer's address as listed in -peers (default: -addr)")
	flag.IntVar(&o.replicas, "replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = 64)")
	flag.DurationVar(&o.stealInterval, "steal-interval", 0, "idle work-stealing poll interval (0 = 500ms)")
	flag.Float64Var(&o.degradeAt, "degrade-at", 0, "queue-fill fraction that degrades expensive methods to a cheaper engine (0 = 0.75; negative disables)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the daemon's lifetime to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a pprof heap profile (taken at shutdown) to this file")
	flag.Parse()

	if err := o.validate(); err != nil {
		return err
	}

	stopProfiles, err := driver.StartProfiles(o.cpuprofile, o.memprofile, driver.StderrNotify)
	if err != nil {
		return err
	}
	defer stopProfiles()

	var st *store.Store
	if o.dataDir != "" {
		st, err = store.Open(o.dataDir, o.storeBytes)
		if err != nil {
			return err
		}
	}

	svc := service.New(service.Config{
		Workers:        o.workers,
		SpecWidth:      o.spec,
		QueueDepth:     o.queueDepth,
		CacheEntries:   o.cacheEntries,
		JobRetention:   o.retention,
		DefaultTimeout: o.defaultTimeout,
		Store:          st,
		DegradeAt:      o.degradeAt,
	})

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stealCtx, stopSteal := context.WithCancel(context.Background())
	defer stopSteal()
	if peers := o.peerList(); len(peers) > 0 {
		node, err := cluster.New(cluster.Config{
			Self:          o.selfAddr(),
			Peers:         peers,
			Replicas:      o.replicas,
			StealInterval: o.stealInterval,
		})
		if err != nil {
			return err
		}
		svc.SetCluster(node)
		go node.StealLoop(stealCtx, svc)
		log.Printf("fpartd: cluster of %d peers, self %s", len(peers), node.Self())
	}
	if st != nil {
		log.Printf("fpartd: disk store at %s (%d entries, %d bytes)", o.dataDir, st.Len(), st.Bytes())
	}

	// The smoke script and tests parse this line to learn the bound port.
	log.Printf("fpartd: listening on %s", ln.Addr())
	cfg := svc.Config()
	log.Printf("fpartd: %d workers, queue %d, cache %d entries",
		cfg.Workers, cfg.QueueDepth, cfg.CacheEntries)
	log.Printf("fpartd: methods: %s (GET /methods for capabilities)",
		strings.Join(driver.Methods(), ", "))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("fpartd: %v: draining (grace %v)", s, o.grace)
	case err := <-serveErr:
		svc.Shutdown(context.Background())
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	// Stop the steal loop and the listener first so no new work arrives,
	// then drain the pool; jobs still running when the grace period expires
	// are canceled via their contexts.
	stopSteal()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("fpartd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("fpartd: canceled in-flight jobs: %v", err)
	}
	log.Printf("fpartd: bye")
	return nil
}
