// Command fpartd is the long-running partitioning daemon: an HTTP/JSON
// front end over the same pipeline the one-shot fpart CLI drives, with a
// bounded job queue, a worker pool, a content-addressed result cache, and
// live event streaming. See internal/service for the API surface.
//
// Usage:
//
//	fpartd -addr :8080
//	fpartd -addr 127.0.0.1:0 -workers 4 -queue 128 -cache 256
//
// Submit a job and follow it:
//
//	curl -s localhost:8080/v1/partition -d '{"circuit":"s9234","device":"XC3020"}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -sN localhost:8080/v1/jobs/job-1/events
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops admitting work, lets the HTTP server
// finish open requests, and drains in-flight jobs until -grace expires,
// after which they are canceled via their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpart/internal/driver"
	"fpart/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fpartd: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole daemon lifecycle so deferred cleanup (profile
// teardown) survives error exits and panics.
func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker pool size and shared CPU budget (0 = GOMAXPROCS)")
	spec := flag.Int("spec", 1, "speculative peeling width for fpart jobs: race this many candidates per peel step within the worker budget (1 = sequential)")
	queueDepth := flag.Int("queue", 0, "bounded job queue depth; overflow is rejected with 429 (0 = 64)")
	cacheEntries := flag.Int("cache", 0, "result cache capacity in entries, LRU-evicted (0 = 128)")
	retention := flag.Int("retention", 0, "finished jobs kept queryable (0 = 1024)")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-job deadline when the request sets none (0 = unlimited)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period before in-flight jobs are canceled")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the daemon's lifetime to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken at shutdown) to this file")
	flag.Parse()

	stopProfiles, err := driver.StartProfiles(*cpuprofile, *memprofile, driver.StderrNotify)
	if err != nil {
		return err
	}
	defer stopProfiles()

	svc := service.New(service.Config{
		Workers:        *workers,
		SpecWidth:      *spec,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		JobRetention:   *retention,
		DefaultTimeout: *defaultTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The smoke script and tests parse this line to learn the bound port.
	log.Printf("fpartd: listening on %s", ln.Addr())
	cfg := svc.Config()
	log.Printf("fpartd: %d workers, queue %d, cache %d entries",
		cfg.Workers, cfg.QueueDepth, cfg.CacheEntries)
	log.Printf("fpartd: methods: %s (GET /methods for capabilities)",
		strings.Join(driver.Methods(), ", "))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("fpartd: %v: draining (grace %v)", s, *grace)
	case err := <-serveErr:
		svc.Shutdown(context.Background())
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the pool;
	// jobs still running when the grace period expires are canceled via
	// their contexts.
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("fpartd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("fpartd: canceled in-flight jobs: %v", err)
	}
	log.Printf("fpartd: bye")
	return nil
}
