// Command sweep runs parameter sensitivity studies over FPART's published
// constants and prints one series table per parameter.
//
// Usage:
//
//	sweep                          # default: s13207 on XC3020, all sweeps
//	sweep -circuit s9234 -device XC3042 -param lambdaT
package main

import (
	"flag"
	"fmt"
	"os"

	"fpart/internal/device"
	"fpart/internal/sweep"
)

func main() {
	circuit := flag.String("circuit", "s13207", "Table 1 circuit name")
	devName := flag.String("device", "XC3020", "device name")
	param := flag.String("param", "", "single parameter to sweep: lambdaT, lambdaR, lower2, lowerMulti, upper, stack, nsmall, fill (empty = all)")
	flag.Parse()

	dev, ok := device.ByName(*devName)
	if !ok {
		fail("unknown device %q", *devName)
	}
	r, err := sweep.NewRunner(*circuit, dev)
	if err != nil {
		fail("%v", err)
	}

	var series []sweep.Series
	switch *param {
	case "":
		series = r.Defaults()
	case "lambdaT":
		series = []sweep.Series{r.LambdaT([]float64{0, 0.2, 0.4, 0.6, 0.8, 1.0})}
	case "lambdaR":
		series = []sweep.Series{r.LambdaR([]float64{0, 0.05, 0.1, 0.2, 0.4})}
	case "lower2":
		series = []sweep.Series{r.Lower2([]float64{0.5, 0.8, 0.9, 0.95, 1.0})}
	case "lowerMulti":
		series = []sweep.Series{r.LowerMulti([]float64{0, 0.15, 0.3, 0.6, 0.9})}
	case "upper":
		series = []sweep.Series{r.Upper([]float64{1.0, 1.05, 1.15, 1.3})}
	case "stack":
		series = []sweep.Series{r.StackDepth([]int{0, 2, 4, 8})}
	case "nsmall":
		series = []sweep.Series{r.NSmall([]int{0, 5, 15, 100})}
	case "fill":
		series = []sweep.Series{r.Fill([]float64{0.7, 0.8, 0.9, 1.0})}
	default:
		fail("unknown parameter %q", *param)
	}
	for i, s := range series {
		if i > 0 {
			fmt.Println()
		}
		s.Write(os.Stdout)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}
