// Command benchtables regenerates the experimental tables of the FPART
// paper (Krupnova & Saucier, DATE 1999) on the synthetic benchmark suite.
//
// Usage:
//
//	benchtables              # all tables (1-7)
//	benchtables -table 2     # one table
//
// Tables 2-5 print the paper's published competitor columns (marked *)
// next to freshly measured results for the three methods implemented in
// this repository; Table 6 reports FPART runtimes. Table 7 is this
// repository's addition: the FPART effort counters (iterations, passes,
// moves, window gating, stack restarts) collected through internal/obs.
package main

import (
	"flag"
	"fmt"
	"os"

	"fpart/internal/bench"
	"fpart/internal/device"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-7); 0 = all")
	formatName := flag.String("format", "text", "rendering for tables 2-5 and 7: text, md, csv")
	flag.Parse()

	format, err := bench.ParseFormat(*formatName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	run := func(n int) error {
		switch n {
		case 1:
			bench.WriteTable1(os.Stdout)
			return nil
		case 2, 3, 4, 5:
			return bench.WriteDeviceTableFormat(os.Stdout, n, format)
		case 6:
			return bench.WriteTable6(os.Stdout)
		case 7:
			return bench.WriteInstrumentation(os.Stdout, device.XC3020, format)
		default:
			return fmt.Errorf("no table %d (valid: 1-7)", n)
		}
	}

	tables := []int{1, 2, 3, 4, 5, 6, 7}
	if *table != 0 {
		tables = []int{*table}
	}
	for i, n := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}
}
