package fpart_test

// One benchmark per table/figure of the paper, plus ablation benches for
// the design choices called out in DESIGN.md. Each device-table benchmark
// runs the three implemented methods on every circuit of that table and
// reports the total device count as a custom metric, so `go test -bench=.`
// regenerates the comparison shape of Tables 2-5 alongside wall-clock cost
// (Table 6's subject).

import (
	"bytes"
	"context"
	"fmt"
	"syscall"
	"testing"

	"fpart/internal/bench"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/gen"
	"fpart/internal/mlfpart"
	"fpart/internal/netlist"
	"fpart/internal/sanchis"
)

// benchOrder trims a table's circuit list under -short so the verify gate
// can exercise every benchmark in seconds instead of minutes. Full runs
// (scripts/bench_pr4.sh) use the complete paper grid.
func benchOrder(order []string) []string {
	if testing.Short() {
		return order[:2]
	}
	return order
}

// ablationCircuit is the instance the ablation benches stress: the hardest
// row of Table 2 normally, a mid-size circuit under -short.
func ablationCircuit() string {
	if testing.Short() {
		return "s9234"
	}
	return "s38584"
}

// peakRSSKB reports the process high-water resident set in KiB, so the
// bench JSON can track the memory cost of pooled arenas alongside time.
func peakRSSKB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss)
}

// BenchmarkTable1Generate regenerates the benchmark suite of Table 1 (all
// ten circuits, both technology mappings).
func BenchmarkTable1Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range gen.MCNC {
			gen.Generate(s, device.XC2000)
			gen.Generate(s, device.XC3000)
		}
	}
}

// tableBench runs every circuit of a device table with one method and
// reports the summed device count (the table's "Total" row).
func tableBench(b *testing.B, dev device.Device, circuits []string, m bench.Method) {
	b.Helper()
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, c := range circuits {
			out, err := bench.Run(c, dev, m)
			if err != nil {
				b.Fatal(err)
			}
			total += out.K
		}
	}
	b.ReportMetric(float64(total), "devices")
}

func BenchmarkTable2XC3020(b *testing.B) {
	for _, m := range []bench.Method{bench.FPART, bench.KwayX, bench.FlowMW} {
		b.Run(m.String(), func(b *testing.B) {
			tableBench(b, device.XC3020, benchOrder(bench.CircuitOrder), m)
		})
	}
}

func BenchmarkTable3XC3042(b *testing.B) {
	for _, m := range []bench.Method{bench.FPART, bench.KwayX, bench.FlowMW} {
		b.Run(m.String(), func(b *testing.B) {
			tableBench(b, device.XC3042, benchOrder(bench.CircuitOrder), m)
		})
	}
}

func BenchmarkTable4XC3090(b *testing.B) {
	for _, m := range []bench.Method{bench.FPART, bench.KwayX, bench.SC, bench.WCDP, bench.FlowMW, bench.Multilevel} {
		b.Run(m.String(), func(b *testing.B) {
			tableBench(b, device.XC3090, benchOrder(bench.CircuitOrder), m)
		})
	}
}

func BenchmarkTable5XC2064(b *testing.B) {
	for _, m := range []bench.Method{bench.FPART, bench.KwayX, bench.SC, bench.WCDP, bench.FlowMW, bench.Multilevel} {
		b.Run(m.String(), func(b *testing.B) {
			tableBench(b, device.XC2064, benchOrder(bench.Table5Order), m)
		})
	}
}

// BenchmarkTable6CPUTime measures FPART wall-clock per circuit and device —
// the quantity Table 6 reports in Sparc Ultra 5 seconds. Sub-benchmark
// names are circuit/device so `-bench Table6` prints the full grid.
func BenchmarkTable6CPUTime(b *testing.B) {
	devs := []device.Device{device.XC3020, device.XC3042, device.XC3090, device.XC2064}
	for _, name := range benchOrder(bench.CircuitOrder) {
		for _, dev := range devs {
			if dev.Name == device.XC2064.Name && bench.Table6Published[name][3] == 0 {
				continue // the paper reports "-" for s-circuits on XC2064
			}
			b.Run(name+"/"+dev.Name, func(b *testing.B) {
				spec, _ := gen.ByName(name)
				h := gen.Generate(spec, dev.Family)
				var moves, bucketOps int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := core.Partition(h, dev, core.Default())
					if err != nil {
						b.Fatal(err)
					}
					moves += int64(r.Stats.MovesApplied)
					bucketOps += int64(r.Stats.BucketOps)
				}
				b.ReportMetric(float64(moves)/float64(b.N), "moves/op")
				b.ReportMetric(float64(bucketOps)/float64(b.N), "bucketops/op")
				b.StopTimer()
				b.ReportMetric(peakRSSKB(), "peak-rss-kb")
			})
		}
	}
}

// BenchmarkTable6ResourceVector is the R>1 companion to Table6CPUTime: a
// Rent-style synthetic circuit with deterministic DSP/BRAM stamps (the
// gencircuit -resources path) peeled onto a vector device whose resource
// caps actually bind, so the per-resource windows and packed
// dominant-resource bound sit on the measured path. Table6CPUTime's rows
// stay R=1 and guard the scalar fast path; this one guards the vector
// generalization.
func BenchmarkTable6ResourceVector(b *testing.B) {
	sizes := []int{1000, 4000}
	if testing.Short() {
		sizes = sizes[:1]
	}
	vdev, err := device.XC3042.WithResources([]device.Resource{
		{Name: "DSP", Cap: 8}, {Name: "BRAM", Cap: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("cells%d", n), func(b *testing.B) {
			var buf bytes.Buffer
			stamps := []gen.ResStamp{{Name: "DSP", Period: 16}, {Name: "BRAM", Period: 64}}
			if err := gen.StreamPHG(&buf, n, n/12, 42, true, stamps); err != nil {
				b.Fatal(err)
			}
			h, err := netlist.ReadPHG(&buf)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := core.Partition(h, vdev, core.Default())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.K), "devices")
					if !r.Feasible {
						b.Fatalf("vector run infeasible at %d cells", n)
					}
				}
			}
		})
	}
}

// BenchmarkTable6Speculative races four §3.5 window variants per peel step
// (speculation width 4) under worker budgets of 1 and 4 over the Table 6
// grid. The candidate set is fixed by the width — the budget only bounds
// how many run at once — so both sub-benchmarks compute bit-identical
// solutions and the parallel1/parallel4 ratio isolates the concurrency
// win. On a single-core host the ratio approaches 1.0; the honest number
// is recorded either way (scripts/bench_pr4.sh stamps host CPUs next to
// it). Routed through driver.RunOpts so the budget semantics match the
// fpart -parallel flag: the run itself holds one token, extra candidates
// only overlap when spare tokens exist.
func BenchmarkTable6Speculative(b *testing.B) {
	devs := []device.Device{device.XC3020, device.XC3042, device.XC3090, device.XC2064}
	for _, name := range benchOrder(bench.CircuitOrder) {
		for _, dev := range devs {
			if dev.Name == device.XC2064.Name && bench.Table6Published[name][3] == 0 {
				continue // the paper reports "-" for s-circuits on XC2064
			}
			for _, par := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/parallel%d", name, dev.Name, par), func(b *testing.B) {
					spec, _ := gen.ByName(name)
					h := gen.Generate(spec, dev.Family)
					opts := driver.Options{SpecWidth: 4, Budget: core.NewBudget(par)}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r, err := driver.RunOpts(context.Background(), "fpart", h, dev, opts)
						if err != nil {
							b.Fatal(err)
						}
						if i == 0 {
							b.ReportMetric(float64(r.K), "devices")
						}
					}
					b.StopTimer()
					b.ReportMetric(peakRSSKB(), "peak-rss-kb")
				})
			}
		}
	}
}

// ablationBench runs FPART with a modified configuration on the hardest
// instance of Table 2 (s38584/XC3020, 2904 CLBs into 52 devices) and
// reports the resulting device count, so the damage done by removing one
// design element is visible next to the time.
func ablationBench(b *testing.B, cfg core.Config) {
	b.Helper()
	spec, _ := gen.ByName(ablationCircuit())
	h := gen.Generate(spec, device.XC3000)
	k := 0
	for i := 0; i < b.N; i++ {
		r, err := core.Partition(h, device.XC3020, cfg)
		if err != nil {
			b.Fatal(err)
		}
		k = r.K
		if !r.Feasible {
			k += 100 // make infeasibility loud in the metric
		}
	}
	b.ReportMetric(float64(k), "devices")
}

// BenchmarkAblationInfeasibilityCost compares the infeasibility-distance
// cost function (§3.3) against the net-count-only cost of [9].
func BenchmarkAblationInfeasibilityCost(b *testing.B) {
	b.Run("published", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("cut-only", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.CutObjective = true
		ablationBench(b, cfg)
	})
}

// BenchmarkAblationSolutionStack toggles the dual solution stacks (§3.6).
func BenchmarkAblationSolutionStack(b *testing.B) {
	b.Run("depth4", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("disabled", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.StackDepth = -1
		ablationBench(b, cfg)
	})
}

// BenchmarkAblationLevelGains toggles the 2-level Krishnamurthy gains
// (§3.7); the paper predicts a small effect.
func BenchmarkAblationLevelGains(b *testing.B) {
	b.Run("level2", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("level1", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.UseLevel2 = false
		ablationBench(b, cfg)
	})
}

// BenchmarkAblationSchedule reduces the improvement schedule (§3.1) to the
// newest-pair pass only.
func BenchmarkAblationSchedule(b *testing.B) {
	b.Run("full", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("pair-only", func(b *testing.B) {
		cfg := core.Default()
		cfg.DisableSchedule = true
		ablationBench(b, cfg)
	})
}

// BenchmarkAblationMoveRegion disables the feasible move regions of §3.5 /
// Figure 3.
func BenchmarkAblationMoveRegion(b *testing.B) {
	b.Run("windows", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("unbounded", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.DisableWindows = true
		ablationBench(b, cfg)
	})
}

// BenchmarkAblationExternalBalance removes the external-I/O balancing
// factor d_k^E (§3.4) by zeroing every pad's influence via the cost
// lambdas on an I/O-critical instance.
func BenchmarkAblationExternalBalance(b *testing.B) {
	run := func(b *testing.B, cfg core.Config) {
		h := gen.Synthetic(300, 260, 7, false)
		dev := device.Device{Name: "pin-poor", Family: device.XC3000, DatasheetCells: 120, Pins: 48, Fill: 1.0}
		k := 0
		for i := 0; i < b.N; i++ {
			r, err := core.Partition(h, dev, cfg)
			if err != nil {
				b.Fatal(err)
			}
			k = r.K
			if !r.Feasible {
				k += 100
			}
		}
		b.ReportMetric(float64(k), "devices")
	}
	b.Run("published", func(b *testing.B) { run(b, core.Default()) })
	b.Run("io-blind", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.Cost.LambdaT = 0
		cfg.Engine.Cost.LambdaS = 1
		run(b, cfg)
	})
}

// BenchmarkExtensionPinGain evaluates the paper's §5 future-work idea (a):
// bucketing cells by the real I/O-pin delta instead of the cut-net gain.
func BenchmarkExtensionPinGain(b *testing.B) {
	b.Run("cut-gain", func(b *testing.B) { ablationBench(b, core.Default()) })
	b.Run("pin-gain", func(b *testing.B) {
		cfg := core.Default()
		cfg.Engine.PinGain = true
		ablationBench(b, cfg)
	})
}

// BenchmarkExtensionEarlyStop evaluates the paper's §5 future-work idea
// (b): stopping an FM pass once the solution drifts away from the feasible
// region, trading a little quality for time.
func BenchmarkExtensionEarlyStop(b *testing.B) {
	for _, stop := range []int{0, 50, 200} {
		name := "off"
		switch stop {
		case 50:
			name = "window50"
		case 200:
			name = "window200"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Default()
			cfg.Engine.EarlyStop = stop
			ablationBench(b, cfg)
		})
	}
}

// BenchmarkFigure3WindowSweep sweeps the 2-block lower window edge around
// the published 0.95 to show the sensitivity Figure 3 illustrates.
func BenchmarkFigure3WindowSweep(b *testing.B) {
	for _, lower := range []float64{0.5, 0.8, 0.95} {
		b.Run(lowerName(lower), func(b *testing.B) {
			cfg := core.Default()
			cfg.Engine.Windows = sanchis.Windows{Upper: 1.05, Lower2: lower, LowerMulti: 0.3}
			ablationBench(b, cfg)
		})
	}
}

// BenchmarkScaling measures FPART wall-clock versus circuit size on
// synthetic circuits at a fixed device, extending Table 6's scaling story
// beyond the MCNC sizes.
func BenchmarkScaling(b *testing.B) {
	dev := device.XC3042
	sizes := []int{500, 1000, 2000, 4000, 8000}
	if testing.Short() {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		b.Run(sizeName(n), func(b *testing.B) {
			h := gen.Synthetic(n, n/12, 42, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := core.Partition(h, dev, core.Default())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.K), "devices")
				}
			}
		})
	}
}

// BenchmarkMLFpartScale measures the multilevel engine on the synthetic
// netlists flat FPART cannot touch — the BENCH_PR9.json quantity
// (scripts/bench_pr9.sh records the full grid up to 10⁶ cells; the
// -short leg of verify.sh runs the 10⁴-cell row so the V-cycle path is
// exercised on every push). The device is a synthetic CELLSxPINS part
// so the block count stays modest as the circuit grows.
func BenchmarkMLFpartScale(b *testing.B) {
	dev, ok := device.Parse("3000x800")
	if !ok {
		b.Fatal("device.Parse(3000x800)")
	}
	sizes := []int{10000, 100000}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("cells%d", n), func(b *testing.B) {
			h := gen.Synthetic(n, n/200, 1, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := mlfpart.Partition(h, dev, mlfpart.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.K), "devices")
					if !r.Feasible {
						b.Fatalf("mlfpart infeasible at %d cells", n)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(peakRSSKB(), "peak-rss-kb")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 500:
		return "n500"
	case 1000:
		return "n1000"
	case 2000:
		return "n2000"
	case 4000:
		return "n4000"
	default:
		return "n8000"
	}
}

// BenchmarkPortfolio compares the single published configuration against
// the 4-strategy portfolio (quality vs 4× work, run concurrently).
func BenchmarkPortfolio(b *testing.B) {
	spec, _ := gen.ByName("s13207")
	h := gen.Generate(spec, device.XC3000)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := core.Partition(h, device.XC3020, core.Default())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(r.K), "devices")
			}
		}
	})
	b.Run("portfolio4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := core.Portfolio(context.Background(), h, device.XC3020, nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(r.K), "devices")
			}
		}
	})
}

func lowerName(f float64) string {
	switch f {
	case 0.5:
		return "lower0.50"
	case 0.8:
		return "lower0.80"
	default:
		return "lower0.95"
	}
}
