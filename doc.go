// Package fpart is a from-scratch Go reproduction of "Iterative Improvement
// Based Multi-Way Netlist Partitioning for FPGAs" (H. Krupnova, G. Saucier,
// DATE 1999).
//
// The paper's algorithm — called FPART — partitions a circuit hypergraph
// into the minimum number of blocks that each fit one FPGA device
// (S_MAX logic cells, T_MAX terminals), by recursive bipartitioning guided
// by multi-way Fiduccia–Mattheyses / Sanchis iterative improvement with an
// infeasibility-distance cost function, feasible move regions, dual
// solution stacks, and directional gain buckets.
//
// Layout:
//
//	internal/hypergraph   circuit hypergraph substrate
//	internal/device       Xilinx XC2000/XC3000 device models, lower bound M
//	internal/partition    incremental partition state, feasibility, cost keys
//	internal/gain         FM gain buckets (LIFO, per move direction)
//	internal/seed         constructive initial bipartitions (§3.2)
//	internal/sanchis      the guided multi-way improvement engine (§3.3–§3.7)
//	internal/core         FPART itself — Algorithm 1 (§3.1), cancellation,
//	                      strategy portfolio
//	internal/obs          observability: structured events, sinks, effort
//	                      counters, per-phase timings
//	internal/kwayx        k-way.x recursive-FM baseline [9]
//	internal/flow         Dinic max-flow + FBB-MW-style baseline [16]
//	internal/netlist      PHG / hMETIS .hgr / BLIF readers and writers
//	internal/techmap      gate-to-CLB technology mapping (XC2000 vs XC3000)
//	internal/gen          synthetic MCNC Partitioning93 benchmark generator
//	internal/bench        Tables 1–6 harness with the paper's published data
//	cmd/fpart             CLI partitioner (-stats, -timeout, -trace-format)
//	cmd/benchtables       regenerates the paper's tables (+ instrumentation)
//	cmd/gencircuit        emits the synthetic benchmark suite
//	examples/...          runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate each table of the paper; see
// DESIGN.md for the experiment index, EXPERIMENTS.md for measured results
// against the published numbers, and ARCHITECTURE.md for the package
// layering, the Algorithm 1 data flow, and the observability layer.
package fpart
