#!/bin/sh
# Scale smoke test: stream a 10^5-cell Rent's-rule synthetic netlist from
# gencircuit -cells and partition it end-to-end with the mlfpart engine,
# asserting a feasible result. This is the CI-sized version of the
# BENCH_PR9.json grid (scripts/bench_pr9.sh records the real artifact up
# to 10^6 cells); it pins that the V-cycle path stays tractable and
# correct on every push. Exits non-zero on any failure.
#
#   CELLS=10000 scripts/smoke_scale.sh   # quicker local run
set -eu
cd "$(dirname "$0")/.."

CELLS=${CELLS:-100000}
# Device pin budget scales with the block size the cells imply; see
# bench_pr9.sh for the grid rationale.
DEVICE=${DEVICE:-3000x800}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

fail() {
    echo "smoke_scale: FAIL: $*" >&2
    exit 1
}

go build -o "$workdir/gencircuit" ./cmd/gencircuit
go build -o "$workdir/fpart" ./cmd/fpart

"$workdir/gencircuit" -cells "$CELLS" -pads $((CELLS / 200)) -seed 1 \
    > "$workdir/scale.phg" || fail "gencircuit -cells $CELLS"

out=$("$workdir/fpart" -method mlfpart -device "$DEVICE" -format phg \
    -timeout 10m "$workdir/scale.phg") || fail "fpart -method mlfpart"

echo "$out" | grep '^result:' || fail "no result line in output"
echo "$out" | grep -q '^result: .*feasible=true' \
    || fail "mlfpart result not feasible at $CELLS cells on $DEVICE"

echo "smoke_scale: OK ($CELLS cells on $DEVICE)"
