#!/bin/sh
# Record the PR4 perf artifact (BENCH_PR4.json): the Table 6 grid with
# allocation counts from the pooled-arena engine plus the speculative
# peeling benchmark at worker budgets 1 and 4. Per circuit/device the JSON
# carries best ns/op and allocs/op (BenchmarkTable6CPUTime), the alloc
# reduction against a pre-arena baseline capture, and the wall-clock ratio
# of BenchmarkTable6Speculative/parallel1 over /parallel4 (same width-4
# candidate set, so solutions are identical and the ratio isolates
# concurrency). host_cpus is stamped into the file because that ratio is
# bounded by min(width, cores): on a 1-CPU host it hovers around 1.0.
#
# Usage:
#   scripts/bench_pr4.sh [-count N] [-benchtime T] [-out FILE] \
#                        [-alloc-baseline RAW] [-input RAW]
#
#   -count N           repetitions per benchmark (default 3; best run kept)
#   -benchtime T       go test -benchtime value (default 1x)
#   -out FILE          output JSON (default BENCH_PR4.json)
#   -alloc-baseline R  raw `go test -bench Table6CPUTime` capture taken
#                      before the arena layer (default
#                      BENCH_PR4_BASELINE_ALLOCS.txt); supplies
#                      baseline_allocs_per_op and alloc_reduction
#   -input RAW         summarize an existing raw capture instead of
#                      benchmarking
set -eu
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1x
OUT=BENCH_PR4.json
ALLOC_BASELINE=BENCH_PR4_BASELINE_ALLOCS.txt
INPUT=
while [ $# -gt 0 ]; do
    case "$1" in
        -count) COUNT=$2; shift 2 ;;
        -benchtime) BENCHTIME=$2; shift 2 ;;
        -out) OUT=$2; shift 2 ;;
        -alloc-baseline) ALLOC_BASELINE=$2; shift 2 ;;
        -input) INPUT=$2; shift 2 ;;
        *) echo "usage: scripts/bench_pr4.sh [-count N] [-benchtime T] [-out FILE] [-alloc-baseline RAW] [-input RAW]" >&2; exit 2 ;;
    esac
done
[ -f "$ALLOC_BASELINE" ] || ALLOC_BASELINE=

if [ -n "$INPUT" ]; then
    RAW=$INPUT
else
    RAW=$(mktemp)
    trap 'rm -f "$RAW"' EXIT
    go test -run '^$' -bench 'BenchmarkTable6(CPUTime|Speculative)$' \
        -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
fi

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

awk -v baseline_file="$ALLOC_BASELINE" -v cpus="$CPUS" '
# strip the trailing -GOMAXPROCS suffix go test appends on multi-proc hosts
function strip(name) { sub(/-[0-9]+$/, "", name); return name }
# scan the "value unit" metric pairs that follow "N ns/op"
function metric(unit,    i) {
    for (i = 5; i < NF; i += 2) if ($(i + 1) == unit) return $i + 0
    return -1
}
function median(vals, n,    tmp, i, j, t) {
    if (n == 0) return 0
    for (i = 1; i <= n; i++) tmp[i] = vals[i]
    for (i = 2; i <= n; i++) {
        t = tmp[i]
        for (j = i - 1; j >= 1 && tmp[j] > t; j--) tmp[j + 1] = tmp[j]
        tmp[j + 1] = t
    }
    if (n % 2) return tmp[(n + 1) / 2]
    return (tmp[n / 2] + tmp[n / 2 + 1]) / 2
}
BEGIN {
    if (baseline_file != "") {
        while ((getline line < baseline_file) > 0) {
            if (line !~ /^BenchmarkTable6CPUTime\//) continue
            nf = split(line, f, /[ \t]+/)
            split(strip(f[1]), p, "/")
            bk = p[2] "/" p[3]
            for (i = 5; i < nf; i += 2)
                if (f[i + 1] == "allocs/op") balloc[bk] = f[i] + 0
        }
        close(baseline_file)
    }
}
/^BenchmarkTable6CPUTime\// {
    split(strip($1), p, "/")
    k = p[2] "/" p[3]
    ns = $3 + 0
    if (!(k in best) || ns < best[k]) {
        best[k] = ns
        allocs[k] = metric("allocs/op")
    }
    if (!(k in seen)) { order[++n] = k; seen[k] = 1 }
}
/^BenchmarkTable6Speculative\// {
    split(strip($1), p, "/")
    k = p[2] "/" p[3]
    ns = $3 + 0
    if (p[4] == "parallel1") { if (!(k in spec1) || ns < spec1[k]) spec1[k] = ns }
    if (p[4] == "parallel4") { if (!(k in spec4) || ns < spec4[k]) spec4[k] = ns }
    rss = metric("peak-rss-kb")
    if (rss > peak_rss) peak_rss = rss
}
END {
    printf "{\n  \"benchmark\": \"BenchmarkTable6CPUTime + BenchmarkTable6Speculative\",\n"
    printf "  \"metric\": \"best ns/op of the recorded runs\",\n"
    printf "  \"host_cpus\": %d,\n", cpus
    if (peak_rss > 0) printf "  \"peak_rss_kb\": %.0f,\n", peak_rss
    printf "  \"instances\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        split(k, kp, "/")
        printf "    {\"circuit\": \"%s\", \"device\": \"%s\", \"ns_per_op\": %.0f", kp[1], kp[2], best[k]
        if (allocs[k] >= 0) printf ", \"allocs_per_op\": %.0f", allocs[k]
        if (k in balloc && allocs[k] >= 0 && balloc[k] > 0) {
            red = 1 - allocs[k] / balloc[k]
            printf ", \"baseline_allocs_per_op\": %.0f, \"alloc_reduction\": %.2f", balloc[k], red
            reds[++nred] = red
        }
        if (k in spec1 && k in spec4 && spec4[k] > 0) {
            sp = spec1[k] / spec4[k]
            printf ", \"spec_parallel1_ns\": %.0f, \"spec_parallel4_ns\": %.0f, \"parallel_speedup\": %.2f",
                spec1[k], spec4[k], sp
            sps[++nsp] = sp
        }
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"median_alloc_reduction\": %.2f,\n", median(reds, nred)
    printf "  \"median_parallel_speedup\": %.2f\n", median(sps, nsp)
    printf "}\n"
}
' "$RAW" > "$OUT"
echo "wrote $OUT"
