#!/bin/sh
# End-to-end smoke test of the fpartd daemon over real HTTP:
#   boot -> submit a built-in benchmark -> poll to completion -> resubmit
#   and assert a cache hit -> check /metrics -> graceful shutdown.
# Needs only curl and the go toolchain. Exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke_service: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$workdir/fpartd.log" >&2 || true
    exit 1
}

go build -o "$workdir/fpartd" ./cmd/fpartd

"$workdir/fpartd" -addr 127.0.0.1:0 -workers 2 >"$workdir/fpartd.log" 2>&1 &
pid=$!

# The daemon logs "fpartd: listening on 127.0.0.1:PORT" once bound.
base=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*fpartd: listening on \([0-9.:]*\)$/\1/p' "$workdir/fpartd.log" | head -n 1)
    if [ -n "$addr" ]; then
        base="http://$addr"
        break
    fi
    kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its listen address"

curl -fsS "$base/healthz" >/dev/null || fail "healthz"

# Method discovery must list the engine registry, paper's algorithm first.
methods=$(curl -fsS "$base/methods") || fail "methods"
case "$methods" in
*'"name":"fpart"'*'"name":"kwayx"'*'"name":"multilevel"'*'"name":"mlfpart"'*) ;;
*) fail "method discovery missing registry entries: $methods" ;;
esac
case "$methods" in
*'"cancellable":true'*) ;;
*) fail "method discovery missing capability flags: $methods" ;;
esac
case "$methods" in
*'"board_aware":true'*) ;;
*) fail "method discovery missing the board-aware capability: $methods" ;;
esac

# Unknown methods are rejected at submit with the registry quoted.
code=$(curl -sS -o "$workdir/badmethod.json" -w '%{http_code}' -X POST \
    -d '{"circuit":"s9234","device":"XC3020","method":"anneal"}' \
    "$base/v1/partition") || fail "bad-method submit"
[ "$code" = "400" ] || fail "unknown method: want HTTP 400, got $code"
grep -q 'fpart' "$workdir/badmethod.json" || fail "400 body should quote the registry"

# Submit a built-in benchmark; first submission must be a fresh computation.
body='{"circuit":"s9234","device":"XC3020","method":"fpart"}'
resp=$(curl -fsS -X POST -d "$body" "$base/v1/partition") || fail "submit"
case "$resp" in
*'"id":"job-1"'*) ;;
*) fail "unexpected submit response: $resp" ;;
esac
case "$resp" in
*'"cached":true'*) fail "first submission reported cached: $resp" ;;
esac

# Poll until the job reaches a terminal state.
state=""
for _ in $(seq 1 300); do
    status=$(curl -fsS "$base/v1/jobs/job-1") || fail "poll"
    state=$(printf '%s' "$status" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    case "$state" in
    done) break ;;
    failed | canceled) fail "job ended $state: $status" ;;
    esac
    sleep 0.1
done
[ "$state" = "done" ] || fail "job never completed (last state: $state)"
case "$status" in
*'"feasible":true'*) ;;
*) fail "job done but not feasible: $status" ;;
esac

# The event stream must replay a complete run-start..run-end envelope.
events=$(curl -fsS "$base/v1/jobs/job-1/events") || fail "events"
case "$events" in
*run-start*run-end*) ;;
*) fail "event stream missing run envelope: $events" ;;
esac

# An identical resubmission must be answered from the result cache,
# synchronously (HTTP 200, cached:true, no new computation).
resp2=$(curl -fsS -X POST -d "$body" "$base/v1/partition") || fail "resubmit"
case "$resp2" in
*'"cached":true'*) ;;
*) fail "resubmission missed the cache: $resp2" ;;
esac

metrics=$(curl -fsS "$base/metrics") || fail "metrics"
case "$metrics" in
*'fpartd_computations_total 1'*) ;;
*) fail "expected exactly one computation in metrics" ;;
esac
case "$metrics" in
*'fpartd_cache_hits_total 1'*) ;;
*) fail "expected one cache hit in metrics" ;;
esac

# A vector-device, board-gated job: extra resource caps ride the
# "resources" field, the "board" field gates the result on a crossbar, and
# the finished view must carry a routable board report.
vbody='{"circuit":"s9234","device":"XC3020","resources":"DSP:4000,BRAM:2000","board":"crossbar:64"}'
vresp=$(curl -fsS -X POST -d "$vbody" "$base/v1/partition") || fail "vector submit"
vid=$(printf '%s' "$vresp" | sed -n 's/.*"id":"\(job-[0-9]*\)".*/\1/p')
[ -n "$vid" ] || fail "vector submit returned no job id: $vresp"
vstate=""
for _ in $(seq 1 300); do
    vstatus=$(curl -fsS "$base/v1/jobs/$vid") || fail "vector poll"
    vstate=$(printf '%s' "$vstatus" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    case "$vstate" in
    done) break ;;
    failed | canceled) fail "vector job ended $vstate: $vstatus" ;;
    esac
    sleep 0.1
done
[ "$vstate" = "done" ] || fail "vector job never completed (last state: $vstate)"
case "$vstatus" in
*'"feasible":true'*) ;;
*) fail "vector job done but not feasible: $vstatus" ;;
esac
case "$vstatus" in
*'"Routable":true'*) ;;
*) fail "board-gated job missing a routable board report: $vstatus" ;;
esac

# Malformed board specs are rejected at admission, naming the token.
code=$(curl -sS -o "$workdir/badboard.json" -w '%{http_code}' -X POST \
    -d '{"circuit":"s9234","device":"XC3020","board":"mesh:4xfour"}' \
    "$base/v1/partition") || fail "bad-board submit"
[ "$code" = "400" ] || fail "bad board spec: want HTTP 400, got $code"
grep -q '4xfour' "$workdir/badboard.json" || fail "400 body should name the bad board token"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "daemon ignored SIGTERM"
fi
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
grep -q 'fpartd: bye' "$workdir/fpartd.log" || fail "no clean shutdown log line"

echo "smoke_service: all green"
