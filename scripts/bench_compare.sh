#!/bin/sh
# Guard against wall-clock regressions between two bench artifacts: compare
# ns_per_op for every circuit/device instance present in both files and
# exit nonzero if any got slower by more than the tolerance. Works on any
# BENCH_*.json written by scripts/bench.sh or scripts/bench_pr4.sh (one
# instance object per line).
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [-tolerance PCT]
#
#   -tolerance PCT  allowed slowdown in percent before failing (default 10)
set -eu

TOL=10
OLD=
NEW=
while [ $# -gt 0 ]; do
    case "$1" in
        -tolerance) TOL=$2; shift 2 ;;
        -*) echo "usage: scripts/bench_compare.sh OLD.json NEW.json [-tolerance PCT]" >&2; exit 2 ;;
        *) if [ -z "$OLD" ]; then OLD=$1; elif [ -z "$NEW" ]; then NEW=$1; else
               echo "usage: scripts/bench_compare.sh OLD.json NEW.json [-tolerance PCT]" >&2; exit 2
           fi; shift ;;
    esac
done
if [ -z "$OLD" ] || [ -z "$NEW" ]; then
    echo "usage: scripts/bench_compare.sh OLD.json NEW.json [-tolerance PCT]" >&2
    exit 2
fi

awk -v old_file="$OLD" -v tol="$TOL" '
function instance(line, dest,    c, d, ns) {
    if (match(line, /"circuit": *"[^"]*"/) == 0) return
    c = substr(line, RSTART, RLENGTH); gsub(/.*: *"|"$/, "", c)
    if (match(line, /"device": *"[^"]*"/) == 0) return
    d = substr(line, RSTART, RLENGTH); gsub(/.*: *"|"$/, "", d)
    if (match(line, /"ns_per_op": *[0-9.]+/) == 0) return
    ns = substr(line, RSTART, RLENGTH); gsub(/.*: */, "", ns)
    dest[c "/" d] = ns + 0
}
BEGIN {
    while ((getline line < old_file) > 0) instance(line, old)
    close(old_file)
}
{ instance($0, new) }
END {
    worst = 0
    for (k in new) {
        if (!(k in old)) {
            # An instance with no baseline is a silent coverage hole, not a
            # pass: report it per instance and fail, so a renamed or dropped
            # grid entry cannot slip through as "no regression".
            printf "MISSING    %-18s %12.0f ns/op (no baseline instance in old file)\n", k, new[k]
            missing++
            continue
        }
        if (old[k] <= 0) {
            printf "MISSING    %-18s %12.0f ns/op (baseline ns_per_op is zero)\n", k, new[k]
            missing++
            continue
        }
        matched++
        delta = (new[k] / old[k] - 1) * 100
        if (delta > tol) {
            printf "REGRESSION %-18s %12.0f -> %12.0f ns/op (%+.1f%%)\n", k, old[k], new[k], delta
            bad++
        }
        if (delta > worst) worst = delta
    }
    if (matched == 0) {
        print "bench_compare: no matching circuit/device instances between the two files" > "/dev/stderr"
        exit 2
    }
    printf "bench_compare: %d instances matched, worst slowdown %+.1f%% (tolerance %s%%)\n", matched, worst, tol
    if (missing > 0) {
        printf "bench_compare: %d instance(s) missing from the baseline\n", missing > "/dev/stderr"
        exit 2
    }
    if (bad > 0) exit 1
}
' "$NEW"
