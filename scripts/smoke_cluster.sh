#!/bin/sh
# End-to-end smoke test of a three-peer fpartd cluster over real HTTP:
#   boot 3 peers with disk stores -> reject bad boot flags -> submit to a
#   non-owner and assert consistent-hash forwarding + owner cache hit ->
#   pin a backlog on one peer and assert idle peers steal it -> SIGKILL
#   the owner and assert local fallback -> restart the owner and assert
#   the disk store answers without recomputing -> batch fan-out -> drain.
# Needs only curl and the go toolchain. Exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid1="" pid2="" pid3=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke_cluster: FAIL: $*" >&2
    for i in 1 2 3; do
        echo "--- peer $i log ---" >&2
        cat "$workdir/peer$i.log" >&2 2>/dev/null || true
    done
    exit 1
}

go build -o "$workdir/fpartd" ./cmd/fpartd

# Boot validation: negative sizes are rejected with the flag named.
if "$workdir/fpartd" -workers -1 2>"$workdir/neg.log"; then
    fail "-workers -1 must be rejected at boot"
fi
grep -q -- '-workers' "$workdir/neg.log" || fail "boot error must name -workers"
if "$workdir/fpartd" -grace -1s 2>"$workdir/neg.log"; then
    fail "-grace -1s must be rejected at boot"
fi
grep -q -- '-grace' "$workdir/neg.log" || fail "boot error must name -grace"

# start_peer INDEX PORT PEERS: boot one daemon with its own data dir.
start_peer() {
    mkdir -p "$workdir/data$1"
    "$workdir/fpartd" -addr "127.0.0.1:$2" -advertise "127.0.0.1:$2" \
        -peers "$3" -workers 1 -steal-interval 100ms \
        -data-dir "$workdir/data$1" \
        >"$workdir/peer$1.log" 2>&1 &
    eval "pid$1=\$!"
}

# wait_bound INDEX: wait until the peer logs its listen line.
wait_bound() {
    for _ in $(seq 1 50); do
        grep -q 'fpartd: listening on' "$workdir/peer$1.log" 2>/dev/null && return 0
        eval "kill -0 \$pid$1" 2>/dev/null || return 1
        sleep 0.1
    done
    return 1
}

# The membership needs fixed ports before any peer starts; derive a block
# from the PID and retry a few times if something else holds them.
base=$((($$ % 20000) + 20000))
booted=""
for _ in 1 2 3 4 5; do
    p1=$base p2=$((base + 1)) p3=$((base + 2))
    peers="127.0.0.1:$p1,127.0.0.1:$p2,127.0.0.1:$p3"
    rm -rf "$workdir"/data1 "$workdir"/data2 "$workdir"/data3
    start_peer 1 "$p1" "$peers"
    start_peer 2 "$p2" "$peers"
    start_peer 3 "$p3" "$peers"
    if wait_bound 1 && wait_bound 2 && wait_bound 3; then
        booted=1
        break
    fi
    for p in "$pid1" "$pid2" "$pid3"; do kill -9 "$p" 2>/dev/null || true; done
    pid1="" pid2="" pid3=""
    base=$((base + 7))
done
[ -n "$booted" ] || fail "could not boot three peers on free ports"

# submit URL BODY [extra curl args]: POST a submission, keeping response
# headers in $workdir/hdr for peer_of.
submit() {
    url=$1 body=$2
    shift 2
    curl -fsS -D "$workdir/hdr" "$@" -X POST -d "$body" "$url/v1/partition"
}
peer_of() {
    sed -n 's/^[Xx]-[Ff]part-[Pp]eer: *//p' "$workdir/hdr" | tr -d '\r' | head -n 1
}
job_of() {
    printf '%s' "$1" | sed -n 's/.*"id":"\(job-[0-9]*\)".*/\1/p'
}

# metric_has BASE PATTERN: true when the peer's /metrics matches PATTERN.
metric_has() {
    m=$(curl -fsS "$1/metrics") || fail "metrics scrape on $1"
    printf '%s\n' "$m" | grep -q "$2"
}

# wait_done BASE JOBID: poll until the job completes.
wait_done() {
    state=""
    for _ in $(seq 1 600); do
        st=$(curl -fsS "$1/v1/jobs/$2") || fail "poll $2 on $1"
        state=$(printf '%s' "$st" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
        [ "$state" = "done" ] && return 0
        case "$state" in
        failed | canceled) fail "job $2 ended $state: $st" ;;
        esac
        sleep 0.1
    done
    fail "job $2 on $1 never completed (last state: $state)"
}

# --- 1. Consistent-hash forwarding -----------------------------------------
body='{"circuit":"s9234","device":"XC3020","method":"fpart"}'
resp=$(submit "http://127.0.0.1:$p1" "$body") || fail "initial submit"
owner=$(peer_of)
[ -n "$owner" ] || fail "submission response carries no X-Fpart-Peer header"
job=$(job_of "$resp")
[ -n "$job" ] || fail "no job id in: $resp"
wait_done "http://$owner" "$job"

# Pick a peer that is NOT the owner and resubmit: the request must be
# forwarded to the owner and answered from its cache.
sub=""
for port in $p1 $p2 $p3; do
    if [ "127.0.0.1:$port" != "$owner" ]; then
        sub="127.0.0.1:$port"
        break
    fi
done
[ -n "$sub" ] || fail "all peers claim to be the owner"
resp2=$(submit "http://$sub" "$body") || fail "forwarded resubmit"
[ "$(peer_of)" = "$owner" ] || fail "resubmission handled by $(peer_of), want owner $owner"
case "$resp2" in
*'"cached":true'*) ;;
*) fail "forwarded resubmission missed the owner cache: $resp2" ;;
esac
metric_has "http://$sub" '^fpartd_forward_total [1-9]' ||
    fail "forward not counted on $sub"

# --- 2. Work stealing -------------------------------------------------------
# Pin a backlog on one single-worker peer (the forwarded marker makes it
# execute locally); its idle neighbours must steal part of it.
steal_jobs=""
for spec in XC3042:fpart XC3090:fpart XC2064:fpart XC3042:multilevel XC3090:multilevel; do
    dev=${spec%:*} method=${spec#*:}
    r=$(submit "http://$sub" "{\"circuit\":\"s9234\",\"device\":\"$dev\",\"method\":\"$method\"}" \
        -H 'X-Fpart-Forwarded: smoke') || fail "pinned submit for $spec"
    id=$(job_of "$r")
    [ -n "$id" ] || fail "no job id for pinned $spec: $r"
    steal_jobs="$steal_jobs $id"
done
stolen=""
for _ in $(seq 1 300); do
    if metric_has "http://$sub" '^fpartd_stolen_served_total [1-9]'; then
        stolen=1
        break
    fi
    sleep 0.1
done
[ -n "$stolen" ] || fail "no queued job was ever stolen from $sub"
for id in $steal_jobs; do
    wait_done "http://$sub" "$id"
done

# --- 3. Owner death: forward falls back to local execution ------------------
ownpid="" ownidx=""
for i in 1 2 3; do
    eval "port=\$p$i"
    if [ "127.0.0.1:$port" = "$owner" ]; then
        eval "ownpid=\$pid$i"
        ownidx=$i
    fi
done
[ -n "$ownpid" ] || fail "cannot map owner $owner to a PID"
kill -9 "$ownpid"
for _ in $(seq 1 50); do
    kill -0 "$ownpid" 2>/dev/null || break
    sleep 0.1
done
eval "pid$ownidx=''"

resp3=$(submit "http://$sub" "$body") || fail "submit with dead owner"
[ "$(peer_of)" = "$sub" ] || fail "dead-owner submission handled by $(peer_of), want local $sub"
job3=$(job_of "$resp3")
wait_done "http://$sub" "$job3"
metric_has "http://$sub" '^fpartd_forward_fallback_total [1-9]' ||
    fail "owner-down fallback not counted on $sub"

# --- 4. Restart: the disk store answers without recomputing -----------------
eval "ownport=\$p$ownidx"
start_peer "$ownidx" "$ownport" "$peers"
wait_bound "$ownidx" || fail "owner did not restart"
resp4=$(submit "http://$owner" "$body" -H 'X-Fpart-Forwarded: smoke') || fail "post-restart submit"
case "$resp4" in
*'"cached":true'*) ;;
*) fail "restarted owner recomputed instead of reading its disk store: $resp4" ;;
esac
metric_has "http://$owner" '^fpartd_store_hits_total [1-9]' ||
    fail "disk store hit not counted after restart"

# --- 5. Batch fan-out -------------------------------------------------------
bresp=$(curl -fsS -X POST -d '{"circuit":"s9234","devices":["XC3020","XC3042"]}' \
    "http://$sub/v1/batch") || fail "batch submit"
gid=$(printf '%s' "$bresp" | sed -n 's/.*"id":"\(grp-[0-9]*\)".*/\1/p')
[ -n "$gid" ] || fail "no group id in: $bresp"
complete=""
for _ in $(seq 1 600); do
    g=$(curl -fsS "http://$sub/v1/groups/$gid") || fail "group poll"
    case "$g" in
    *'"complete":true'*)
        complete=1
        break
        ;;
    esac
    sleep 0.1
done
[ -n "$complete" ] || fail "batch group never completed: $g"

# --- 6. Drain ---------------------------------------------------------------
for i in 1 2 3; do
    eval "p=\$pid$i"
    [ -n "$p" ] && kill -TERM "$p" 2>/dev/null || true
done
for i in 1 2 3; do
    eval "p=\$pid$i"
    [ -n "$p" ] || continue
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$p" 2>/dev/null && fail "peer $i ignored SIGTERM"
    eval "pid$i=''"
done

echo "smoke_cluster: all green"
