#!/bin/sh
# Record the PR9 scale artifact (BENCH_PR9.json): the mlfpart V-cycle vs
# flat FPART on streamed Rent's-rule synthetic netlists at 10^4, 10^5,
# and 10^6 cells. Per (cells, method) row the JSON carries wall-clock
# seconds, the engine's own elapsed time, device count, feasibility, and
# cut nets, plus the host CPU count. The device scales with the circuit
# (CELLSxPINS synthetic parts, see device.Parse) so the block count stays
# modest; each size keeps one fixed device so the two methods are
# directly comparable.
#
# Flat FPART is only run up to -flat-max cells (default 10^4): its flat
# FM passes are superlinear-in-practice and a 10^5-cell flat run already
# takes hours where mlfpart takes seconds — which is the point of the
# artifact. Skipped flat rows are recorded explicitly as skipped rather
# than silently dropped.
#
# Usage:
#   scripts/bench_pr9.sh [-out FILE] [-flat-max N] [-max-cells N]
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR9.json
FLATMAX=10000
MAXCELLS=1000000
while [ $# -gt 0 ]; do
    case "$1" in
        -out) OUT=$2; shift 2 ;;
        -flat-max) FLATMAX=$2; shift 2 ;;
        -max-cells) MAXCELLS=$2; shift 2 ;;
        *) echo "usage: scripts/bench_pr9.sh [-out FILE] [-flat-max N] [-max-cells N]" >&2; exit 2 ;;
    esac
done

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/gencircuit" ./cmd/gencircuit
go build -o "$workdir/fpart" ./cmd/fpart

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# grid: cells device  (pads = cells/200, seed 1 throughout)
grid="10000 3000x800
100000 3000x800
1000000 20000x5000"

rows=$workdir/rows
: > "$rows"

run_one() { # cells device method
    cells=$1; dev=$2; method=$3
    phg=$workdir/c$cells.phg
    [ -f "$phg" ] || "$workdir/gencircuit" -cells "$cells" -pads $((cells / 200)) -seed 1 > "$phg"
    echo "bench_pr9: $method @ $cells cells ($dev)..." >&2
    t0=$(date +%s)
    out=$("$workdir/fpart" -method "$method" -device "$dev" -format phg -timeout 60m "$phg")
    t1=$(date +%s)
    echo "$out" | awk -v cells="$cells" -v dev="$dev" -v method="$method" -v wall=$((t1 - t0)) '
        /^FPART:/ { elapsed = $NF }
        /^result:/ {
            k = $2
            feas = ($4 == "feasible=true,") ? "true" : "false"
            cut = $5; sub(/^cut=/, "", cut)
            printf "    {\"cells\": %d, \"device\": \"%s\", \"method\": \"%s\", \"wall_seconds\": %d, \"engine_elapsed\": \"%s\", \"devices\": %d, \"feasible\": %s, \"cut\": %d}\n", \
                cells, dev, method, wall, elapsed, k, feas, cut
        }' >> "$rows"
}

skip_one() { # cells device method reason
    printf '    {"cells": %d, "device": "%s", "method": "%s", "skipped": "%s"}\n' \
        "$1" "$2" "$3" "$4" >> "$rows"
}

echo "$grid" | while read -r cells dev; do
    [ "$cells" -le "$MAXCELLS" ] || continue
    run_one "$cells" "$dev" mlfpart
    if [ "$cells" -le "$FLATMAX" ]; then
        run_one "$cells" "$dev" fpart
    else
        skip_one "$cells" "$dev" fpart "flat FM intractable at this size (raise -flat-max to force)"
    fi
done

{
    printf '{\n'
    printf '  "benchmark": "mlfpart scale grid (scripts/bench_pr9.sh)",\n'
    printf '  "generator": "gencircuit -cells N -pads N/200 -seed 1",\n'
    printf '  "host_cpus": %d,\n' "$CPUS"
    printf '  "rows": [\n'
    # join rows with commas
    awk '{ lines[NR] = $0 } END { for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR ? "," : "") }' "$rows"
    printf '  ]\n'
    printf '}\n'
} > "$OUT"
echo "wrote $OUT"
