#!/bin/sh
# Record the PR7 perf artifact (BENCH_PR7.json): the Table 6 grid after the
# structure-of-arrays CSR hot path. Per circuit/device the JSON carries the
# best ns/op, moves/op, bucketops/op, and allocs/op of the recorded runs,
# plus the process peak RSS and host CPU count. When a same-host baseline
# capture exists (default BENCH_PR7_BASELINE_HOST.txt — the seed commit's
# Table6CPUTime grid re-measured on THIS host, best run per instance) the
# per-instance and median speedups against it are stamped as well. The
# same-host baseline is the honest comparison: BENCH_PR4.json was recorded
# on a faster incarnation of the container (the unmodified seed commit
# measures ~1.3x slower here than that artifact's numbers), so wall-clock
# ratios against BENCH_PR4.json conflate code and host. Baseline lines may
# be either full `go test -bench` lines or reduced "name ns" pairs.
#
# Usage:
#   scripts/bench_pr7.sh [-count N] [-benchtime T] [-out FILE] \
#                        [-baseline RAW] [-input RAW]
#
#   -count N      repetitions per benchmark (default 3; best run kept)
#   -benchtime T  go test -benchtime value (default 1x)
#   -out FILE     output JSON (default BENCH_PR7.json)
#   -baseline RAW same-host seed capture (default BENCH_PR7_BASELINE_HOST.txt)
#   -input RAW    summarize an existing raw capture instead of benchmarking
set -eu
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1x
OUT=BENCH_PR7.json
BASELINE=BENCH_PR7_BASELINE_HOST.txt
INPUT=
while [ $# -gt 0 ]; do
    case "$1" in
        -count) COUNT=$2; shift 2 ;;
        -benchtime) BENCHTIME=$2; shift 2 ;;
        -out) OUT=$2; shift 2 ;;
        -baseline) BASELINE=$2; shift 2 ;;
        -input) INPUT=$2; shift 2 ;;
        *) echo "usage: scripts/bench_pr7.sh [-count N] [-benchtime T] [-out FILE] [-baseline RAW] [-input RAW]" >&2; exit 2 ;;
    esac
done
[ -f "$BASELINE" ] || BASELINE=

if [ -n "$INPUT" ]; then
    RAW=$INPUT
else
    RAW=$(mktemp)
    trap 'rm -f "$RAW"' EXIT
    go test -run '^$' -bench 'BenchmarkTable6CPUTime$' \
        -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
fi

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

awk -v baseline_file="$BASELINE" -v cpus="$CPUS" '
function strip(name) { sub(/-[0-9]+$/, "", name); return name }
function metric(unit,    i) {
    for (i = 5; i < NF; i += 2) if ($(i + 1) == unit) return $i + 0
    return -1
}
function median(vals, n,    tmp, i, j, t) {
    if (n == 0) return 0
    for (i = 1; i <= n; i++) tmp[i] = vals[i]
    for (i = 2; i <= n; i++) {
        t = tmp[i]
        for (j = i - 1; j >= 1 && tmp[j] > t; j--) tmp[j + 1] = tmp[j]
        tmp[j + 1] = t
    }
    if (n % 2) return tmp[(n + 1) / 2]
    return (tmp[n / 2] + tmp[n / 2 + 1]) / 2
}
BEGIN {
    if (baseline_file != "") {
        while ((getline line < baseline_file) > 0) {
            if (line !~ /^BenchmarkTable6CPUTime\//) continue
            nf = split(line, f, /[ \t]+/)
            split(strip(f[1]), p, "/")
            bk = p[2] "/" p[3]
            ns = (nf >= 3) ? f[3] + 0 : f[2] + 0
            if (nf == 2) ns = f[2] + 0
            if (ns > 0 && (!(bk in base) || ns < base[bk])) base[bk] = ns
        }
        close(baseline_file)
    }
}
/^BenchmarkTable6CPUTime\// {
    split(strip($1), p, "/")
    k = p[2] "/" p[3]
    ns = $3 + 0
    if (!(k in best) || ns < best[k]) {
        best[k] = ns
        allocs[k] = metric("allocs/op")
        moves[k] = metric("moves/op")
        bops[k] = metric("bucketops/op")
    }
    rss = metric("peak-rss-kb")
    if (rss > peak_rss) peak_rss = rss
    if (!(k in seen)) { order[++n] = k; seen[k] = 1 }
}
END {
    printf "{\n  \"benchmark\": \"BenchmarkTable6CPUTime\",\n"
    printf "  \"metric\": \"best ns/op of the recorded runs\",\n"
    printf "  \"host_cpus\": %d,\n", cpus
    if (peak_rss > 0) printf "  \"peak_rss_kb\": %.0f,\n", peak_rss
    printf "  \"instances\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        split(k, kp, "/")
        printf "    {\"circuit\": \"%s\", \"device\": \"%s\", \"ns_per_op\": %.0f", kp[1], kp[2], best[k]
        if (moves[k] >= 0) printf ", \"moves_per_op\": %.0f", moves[k]
        if (bops[k] >= 0) printf ", \"bucketops_per_op\": %.0f", bops[k]
        if (allocs[k] >= 0) printf ", \"allocs_per_op\": %.0f", allocs[k]
        if (k in base && base[k] > 0) {
            sp = base[k] / best[k]
            printf ", \"baseline_host_ns_per_op\": %.0f, \"speedup_vs_seed\": %.2f", base[k], sp
            sps[++nsp] = sp
        }
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ],\n"
    printf "  \"median_speedup_vs_seed_same_host\": %.2f\n", median(sps, nsp)
    printf "}\n"
}
' "$RAW" > "$OUT"
echo "wrote $OUT"
