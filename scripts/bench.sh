#!/bin/sh
# Record the Table 6 wall-clock benchmarks (BenchmarkTable6CPUTime) as a
# JSON perf-trajectory artifact: per circuit/device the best ns/op across
# -count repetitions plus the MovesApplied and BucketOps effort counters.
#
# Usage:
#   scripts/bench.sh [-count N] [-benchtime T] [-out FILE] [-baseline RAW] [-input RAW]
#
#   -count N      repetitions per benchmark (default 3; best run is kept)
#   -benchtime T  go test -benchtime value (default 2x)
#   -out FILE     output JSON (default BENCH_PR2.json)
#   -baseline RAW a previous raw `go test -bench` capture; when given, the
#                 output embeds baseline ns/op and the speedup per instance
#   -input RAW    summarize an existing raw capture instead of benchmarking.
#                 On hosts with drifting clock speed, capture baseline and
#                 candidate interleaved (alternate `go test -c` binaries per
#                 -count round), then feed both captures through this mode.
set -eu
cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=2x
OUT=BENCH_PR2.json
BASELINE=
INPUT=
while [ $# -gt 0 ]; do
    case "$1" in
        -count) COUNT=$2; shift 2 ;;
        -benchtime) BENCHTIME=$2; shift 2 ;;
        -out) OUT=$2; shift 2 ;;
        -baseline) BASELINE=$2; shift 2 ;;
        -input) INPUT=$2; shift 2 ;;
        *) echo "usage: scripts/bench.sh [-count N] [-benchtime T] [-out FILE] [-baseline RAW] [-input RAW]" >&2; exit 2 ;;
    esac
done

if [ -n "$INPUT" ]; then
    RAW=$INPUT
else
    RAW=$(mktemp)
    trap 'rm -f "$RAW"' EXIT
    go test -run '^$' -bench 'BenchmarkTable6CPUTime' -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
fi

awk -v baseline_file="$BASELINE" '
function key_of(name,    parts, dev) {
    split(name, parts, "/")
    dev = parts[3]
    sub(/-[0-9]+$/, "", dev)
    return parts[2] "/" dev
}
function parse_line(dest_ns, dest_mv, dest_bo,    k, ns, i) {
    k = key_of($1)
    ns = $3 + 0
    if (!(k in dest_ns) || ns < dest_ns[k]) dest_ns[k] = ns
    for (i = 5; i < NF; i += 2) {
        if ($(i + 1) == "moves/op") dest_mv[k] = $i + 0
        if ($(i + 1) == "bucketops/op") dest_bo[k] = $i + 0
    }
    return k
}
BEGIN {
    if (baseline_file != "") {
        while ((getline line < baseline_file) > 0) {
            if (line !~ /^BenchmarkTable6CPUTime\//) continue
            split(line, f, /[ \t]+/)
            bk = key_of(f[1])
            bns = f[3] + 0
            if (!(bk in base) || bns < base[bk]) base[bk] = bns
        }
        close(baseline_file)
    }
}
/^BenchmarkTable6CPUTime\// {
    k = parse_line(best, moves, bops)
    if (!(k in seen)) { order[++n] = k; seen[k] = 1 }
}
END {
    printf "{\n  \"benchmark\": \"BenchmarkTable6CPUTime\",\n"
    printf "  \"metric\": \"best ns/op of %s runs\",\n", (n ? "the recorded" : "0")
    printf "  \"instances\": [\n"
    for (i = 1; i <= n; i++) {
        k = order[i]
        split(k, kp, "/")
        printf "    {\"circuit\": \"%s\", \"device\": \"%s\", \"ns_per_op\": %.0f", kp[1], kp[2], best[k]
        if (k in moves) printf ", \"moves_applied\": %.0f", moves[k]
        if (k in bops) printf ", \"bucket_ops\": %.0f", bops[k]
        if (k in base) printf ", \"baseline_ns_per_op\": %.0f, \"speedup\": %.2f", base[k], base[k] / best[k]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}
' "$RAW" > "$OUT"
echo "wrote $OUT"
