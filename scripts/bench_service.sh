#!/bin/sh
# Record the PR8 service artifact (BENCH_SERVICE.json): end-to-end request
# latency of one fpartd daemon under a mixed warm/cold workload, and the
# admission-control behavior at saturation. Three phases against a daemon
# booted with a deliberately small queue (-workers 2 -queue 8
# -degrade-at 0.5) so the degradation ladder is actually exercised:
#
#   1. warm  — submit WARM_KEYS distinct fills of the builtin s9234/XC3020
#              fpart instance and wait for each, priming the result cache;
#   2. sample — SAMPLES sequential requests, one cold (never-seen fill)
#              every COLD_EVERY, the rest cycling the warm keys; each
#              sample is timed submit-to-result (cached answers return on
#              the POST, misses are polled to completion);
#   3. flood — FLOOD distinct fpart submissions fired without waiting, so
#              the queue saturates and submissions degrade to a cheaper
#              engine (counted in fpartd_degraded_total) before 429.
#
# The JSON carries p50/p90/p99/max latency, the cache hit rate, the
# degradation and rejection rates at saturation, and the host CPU count.
# Needs only curl and the go toolchain.
#
# Usage:
#   scripts/bench_service.sh [-samples N] [-flood N] [-out FILE]
set -eu
cd "$(dirname "$0")/.."

SAMPLES=100
FLOOD=40
OUT=BENCH_SERVICE.json
while [ $# -gt 0 ]; do
    case "$1" in
        -samples) SAMPLES=$2; shift 2 ;;
        -flood) FLOOD=$2; shift 2 ;;
        -out) OUT=$2; shift 2 ;;
        *) echo "usage: scripts/bench_service.sh [-samples N] [-flood N] [-out FILE]" >&2; exit 2 ;;
    esac
done

WARM_KEYS=6
COLD_EVERY=5
FLAGS="-workers 2 -queue 8 -degrade-at 0.5"

workdir=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "bench_service: FAIL: $*" >&2
    cat "$workdir/fpartd.log" >&2 2>/dev/null || true
    exit 1
}

go build -o "$workdir/fpartd" ./cmd/fpartd

# shellcheck disable=SC2086
"$workdir/fpartd" -addr 127.0.0.1:0 $FLAGS >"$workdir/fpartd.log" 2>&1 &
pid=$!
base=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*fpartd: listening on \([0-9.:]*\)$/\1/p' "$workdir/fpartd.log" | head -n 1)
    [ -n "$addr" ] && { base="http://$addr"; break; }
    kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its listen address"

# submit FILL: POST one s9234/XC3020 fpart request; body lands in
# $workdir/resp, the HTTP status is echoed.
submit() {
    curl -s -o "$workdir/resp" -w '%{http_code}' -X POST \
        -d "{\"circuit\":\"s9234\",\"device\":\"XC3020\",\"method\":\"fpart\",\"fill\":$1}" \
        "$base/v1/partition"
}

wait_done() {
    for _ in $(seq 1 2000); do
        st=$(curl -fsS "$base/v1/jobs/$1") || fail "poll $1"
        case "$st" in
        *'"state":"done"'*) return 0 ;;
        *'"state":"failed"'* | *'"state":"canceled"'*) fail "job $1: $st" ;;
        esac
        sleep 0.02
    done
    fail "job $1 never completed"
}

job_of() {
    sed -n 's/.*"id":"\(job-[0-9]*\)".*/\1/p' "$workdir/resp" | head -n 1
}

# drain: wait until the queue is empty and all workers idle.
drain() {
    for _ in $(seq 1 3000); do
        m=$(curl -fsS "$base/metrics") || fail "metrics scrape"
        if printf '%s\n' "$m" | grep -q '^fpartd_queue_depth 0$' &&
            printf '%s\n' "$m" | grep -q '^fpartd_workers_busy 0$'; then
            return 0
        fi
        sleep 0.02
    done
    fail "daemon never drained"
}

warm_fill() { awk -v i="$1" 'BEGIN { printf "%.4f", 0.55 + (i % 6) * 0.01 }'; }

# --- 1. Warm the cache ------------------------------------------------------
i=0
while [ "$i" -lt "$WARM_KEYS" ]; do
    code=$(submit "$(warm_fill "$i")")
    [ "$code" = 200 ] || [ "$code" = 202 ] || fail "warm submit: HTTP $code"
    case "$(cat "$workdir/resp")" in
    *'"cached":true'*) ;;
    *) wait_done "$(job_of)" ;;
    esac
    i=$((i + 1))
done

# --- 2. Timed samples: mostly warm keys, a fresh fill every COLD_EVERY ------
: >"$workdir/samples"
i=0
cold=0
while [ "$i" -lt "$SAMPLES" ]; do
    if [ $((i % COLD_EVERY)) -eq 0 ]; then
        fill=$(awk -v c="$cold" 'BEGIN { printf "%.4f", 0.62 + c * 0.002 }')
        cold=$((cold + 1))
    else
        fill=$(warm_fill "$i")
    fi
    t0=$(date +%s%N)
    code=$(submit "$fill")
    [ "$code" = 200 ] || [ "$code" = 202 ] || fail "sample submit: HTTP $code"
    case "$(cat "$workdir/resp")" in
    *'"cached":true'*) kind=hit ;;
    *)
        kind=miss
        wait_done "$(job_of)"
        ;;
    esac
    t1=$(date +%s%N)
    awk -v a="$t0" -v b="$t1" -v k="$kind" \
        'BEGIN { printf "%.3f %s\n", (b - a) / 1e6, k }' >>"$workdir/samples"
    i=$((i + 1))
done

# --- 3. Saturation flood: fire-and-forget distinct fpart submissions --------
accepted=0 rejected=0
i=0
while [ "$i" -lt "$FLOOD" ]; do
    fill=$(awk -v i="$i" 'BEGIN { printf "%.4f", 0.75 + i * 0.003 }')
    code=$(submit "$fill")
    case "$code" in
    200 | 202) accepted=$((accepted + 1)) ;;
    429) rejected=$((rejected + 1)) ;;
    *) fail "flood submit: HTTP $code" ;;
    esac
    i=$((i + 1))
done
drain

curl -fsS "$base/metrics" >"$workdir/metrics" || fail "final metrics scrape"
kill -TERM "$pid" 2>/dev/null || true
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
pid=""

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

awk -v metrics_file="$workdir/metrics" -v cpus="$CPUS" \
    -v flags="$FLAGS" -v warm="$WARM_KEYS" -v cold_every="$COLD_EVERY" \
    -v flood="$FLOOD" -v accepted="$accepted" -v rejected="$rejected" '
function pct(p,    idx) {
    idx = int(p * n + 0.999999)
    if (idx < 1) idx = 1
    if (idx > n) idx = n
    return lat[idx]
}
BEGIN {
    while ((getline line < metrics_file) > 0) {
        split(line, f, " ")
        mv[f[1]] = f[2] + 0
    }
    close(metrics_file)
}
{
    lat[++n] = $1 + 0
    if ($2 == "hit") hits++
}
END {
    # insertion sort: n is small
    for (i = 2; i <= n; i++) {
        t = lat[i]
        for (j = i - 1; j >= 1 && lat[j] > t; j--) lat[j + 1] = lat[j]
        lat[j + 1] = t
    }
    degraded = mv["fpartd_degraded_total"]
    printf "{\n"
    printf "  \"benchmark\": \"bench_service: end-to-end request latency and saturation admission control\",\n"
    printf "  \"host_cpus\": %d,\n", cpus
    printf "  \"daemon_flags\": \"%s\",\n", flags
    printf "  \"workload\": {\"circuit\": \"s9234\", \"device\": \"XC3020\", \"method\": \"fpart\", \"warm_keys\": %d, \"cold_every\": %d},\n", warm, cold_every
    printf "  \"latency_ms\": {\"samples\": %d, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n", n, pct(0.50), pct(0.90), pct(0.99), lat[n]
    printf "  \"sample_hit_rate\": %.3f,\n", hits / n
    printf "  \"cache\": {\"hits\": %.0f, \"misses\": %.0f, \"hit_rate\": %.3f},\n", mv["fpartd_cache_hits_total"], mv["fpartd_cache_misses_total"], mv["fpartd_cache_hit_rate"]
    printf "  \"saturation\": {\"attempted\": %d, \"accepted\": %d, \"rejected\": %d, \"degraded\": %.0f, \"degradation_rate\": %.3f, \"rejection_rate\": %.3f},\n", flood, accepted, rejected, degraded, degraded / flood, rejected / flood
    printf "  \"computations_total\": %.0f\n", mv["fpartd_computations_total"]
    printf "}\n"
}
' "$workdir/samples" >"$OUT"
echo "wrote $OUT"
