#!/bin/sh
# The repository's verify gate (see ROADMAP.md):
# build + vet + gofmt + full tests + race run of the concurrency tests.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go test ./...
go test -race ./internal/obs ./internal/core ./internal/sanchis ./internal/service ./internal/driver
echo "verify: all green"
