#!/bin/sh
# The repository's verify gate (see ROADMAP.md):
# build + vet + gofmt + full tests + race run of the concurrency tests +
# a short-mode pass over every benchmark so the harness cannot silently rot.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go test ./...
go test -race ./internal/obs ./internal/core ./internal/sanchis ./internal/service ./internal/store ./internal/cluster ./internal/driver ./internal/engine ./internal/kwayx ./internal/flow ./internal/multilevel ./internal/mlfpart
go test -short -run '^$' -bench . -benchtime 1x .
./scripts/smoke_scale.sh
echo "verify: all green"
