module fpart

go 1.22
